#include "engine/engine.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "engine/attribute_order.h"
#include "engine/execution_context.h"
#include "storage/sort.h"
#include "util/cancel.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/timer.h"

namespace lmfao {

namespace {

/// Fingerprint of the compile-relevant options: anything that changes what
/// the three optimization layers produce must be part of the plan-cache
/// key. Scheduler options are execution-only and deliberately excluded.
uint64_t OptionsFingerprint(const EngineOptions& o) {
  uint64_t h = Mix64(0x5f356495u);
  h = HashCombine(h, static_cast<uint64_t>(o.view_generation.merge_views));
  h = HashCombine(h, static_cast<uint64_t>(o.grouping.multi_output));
  h = HashCombine(h, static_cast<uint64_t>(o.plan.factorize));
  h = HashCombine(h, static_cast<uint64_t>(o.plan.freeze_views));
  // The artifact carries its JIT module, so jit-on and jit-off Prepares
  // must not share cache entries (simd_kernels and the jit *mode flavor*
  // are execution-only and deliberately excluded).
  h = HashCombine(h, static_cast<uint64_t>(o.jit.mode != JitMode::kOff));
  return h;
}

/// Exact structural encoding of a batch under the given options: a flat
/// word sequence with size prefixes, so equality of two keys IS structural
/// equality of the batches (group-by sets, root hints, and every factor's
/// attr/kind/threshold-or-slot/dictionary identity, in canonical order).
/// Query names are excluded (they never reach the compiled artifact);
/// parameterized functions encode their slot, not any bound value — which
/// is exactly what lets CART-style workloads share one artifact across
/// re-issued batches that differ only in constants. The plan cache stores
/// this key per entry and verifies it on every hit, so a collision of the
/// 64-bit signature hash degrades to a fresh compile, never to serving
/// another shape's plans.
std::vector<uint64_t> BatchStructuralKey(const QueryBatch& batch,
                                         const EngineOptions& o) {
  std::vector<uint64_t> key;
  key.push_back(OptionsFingerprint(o));
  key.push_back(static_cast<uint64_t>(batch.size()));
  for (const Query& q : batch.queries()) {
    key.push_back(q.group_by.size());
    for (AttrId a : q.group_by) key.push_back(static_cast<uint64_t>(a));
    key.push_back(static_cast<uint64_t>(q.root_hint));
    key.push_back(q.aggregates.size());
    for (const Aggregate& agg : q.aggregates) {
      key.push_back(agg.factors().size());
      for (const Factor& f : agg.factors()) {
        key.push_back(static_cast<uint64_t>(f.attr));
        key.push_back(static_cast<uint64_t>(f.fn.kind()));
        if (f.fn.kind() == FunctionKind::kDictionary) {
          key.push_back(reinterpret_cast<uintptr_t>(f.fn.dict().get()));
        } else if (f.fn.IsParameterized()) {
          key.push_back(1);  // Tag: slot, not literal threshold.
          key.push_back(static_cast<uint64_t>(f.fn.param()));
        } else {
          key.push_back(0);
          const double threshold = f.fn.threshold();
          uint64_t bits;
          std::memcpy(&bits, &threshold, sizeof(bits));
          key.push_back(bits);
        }
      }
    }
  }
  return key;
}

/// The plan-cache signature: a hash of the structural key.
uint64_t KeySignature(const std::vector<uint64_t>& key) {
  uint64_t h = Mix64(0x7b9f4a31u);
  for (uint64_t w : key) h = HashCombine(h, w);
  return h;
}

}  // namespace

namespace internal {

uint64_t ParamFingerprint(const std::vector<ParamId>& required,
                          const ParamPack& params) {
  uint64_t h = Mix64(0x243f6a88u);
  for (ParamId p : required) {
    h = HashCombine(h, static_cast<uint64_t>(p));
    const double v = params.Get(p);
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h = HashCombine(h, bits);
  }
  return h;
}

}  // namespace internal

Engine::Engine(const Catalog* catalog, const JoinTree* tree,
               EngineOptions options)
    : catalog_(catalog), tree_(tree), options_(std::move(options)) {
  LMFAO_CHECK(catalog_ != nullptr);
  LMFAO_CHECK(tree_ != nullptr);
}

void Engine::InvalidateCaches() {
  // Sorted relations first, then — atomically under plan_mu_ — the
  // generation bump and the plan-cache clear. Prepare reads the
  // generation and probes the cache under the same lock, so a racing
  // Prepare either sees the old generation (its handle fails Execute as
  // stale) or the new generation with an already-empty cache; the
  // combination "new generation, stale cache entry" cannot be observed.
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    sorted_cache_.clear();
  }
  std::lock_guard<std::mutex> lock(plan_mu_);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  plan_cache_.clear();
  plan_lru_.clear();
}

Engine::PlanCacheStats Engine::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  PlanCacheStats stats;
  stats.hits = plan_cache_hits_;
  stats.misses = plan_cache_misses_;
  stats.entries = plan_cache_.size();
  stats.jit_hits = jit_hits_;
  stats.jit_compiles = jit_compiles_;
  jit_modules_.erase(
      std::remove_if(jit_modules_.begin(), jit_modules_.end(),
                     [](const std::weak_ptr<JitModule>& w) {
                       return w.expired();
                     }),
      jit_modules_.end());
  for (const std::weak_ptr<JitModule>& w : jit_modules_) {
    const std::shared_ptr<JitModule> m = w.lock();
    if (m == nullptr) continue;
    const JitModule::State s = m->state();
    if (s == JitModule::State::kFailed) ++stats.jit_failures;
    if (s != JitModule::State::kCompiling) {
      stats.jit_compile_ms += m->compile_ms();
    }
  }
  return stats;
}

StatusOr<CompiledBatch> Engine::Compile(const QueryBatch& batch) const {
  // One compile pipeline: the inspection surface extracts the artifacts
  // from the same code path Prepare runs, so displayed plans can never
  // drift from executed plans.
  LMFAO_ASSIGN_OR_RETURN(std::shared_ptr<CompiledArtifact> artifact,
                         CompileArtifact(batch));
  return std::move(artifact->compiled);
}

StatusOr<std::shared_ptr<CompiledArtifact>> Engine::CompileArtifact(
    const QueryBatch& batch) const {
  auto artifact = std::make_shared<CompiledArtifact>();
  artifact->required_params = batch.RequiredParams();
  artifact->num_queries = batch.size();

  Timer phase_timer;
  LMFAO_ASSIGN_OR_RETURN(
      artifact->compiled.workload,
      GenerateViews(batch, *catalog_, *tree_, options_.view_generation));
  artifact->viewgen_seconds = phase_timer.ElapsedSeconds();
  artifact->num_views = artifact->compiled.workload.NumInnerViews();
  for (const ViewInfo& v : artifact->compiled.workload.views) {
    artifact->num_aggregates += static_cast<int>(v.aggregates.size());
  }

  phase_timer.Reset();
  LMFAO_ASSIGN_OR_RETURN(
      artifact->compiled.grouped,
      GroupViews(artifact->compiled.workload, *catalog_, options_.grouping));
  artifact->grouping_seconds = phase_timer.ElapsedSeconds();

  phase_timer.Reset();
  for (const ViewGroup& group : artifact->compiled.grouped.groups) {
    LMFAO_ASSIGN_OR_RETURN(
        std::vector<AttrId> order,
        ComputeAttributeOrder(artifact->compiled.workload, group, *catalog_));
    LMFAO_ASSIGN_OR_RETURN(
        GroupPlan plan,
        BuildGroupPlan(artifact->compiled.workload, group, *catalog_, order,
                       options_.plan));
    artifact->compiled.attr_orders.push_back(std::move(order));
    artifact->compiled.plans.push_back(std::move(plan));
  }
  AssignViewForms(artifact->compiled.workload, artifact->compiled.grouped,
                  options_.plan, &artifact->compiled.plans);
  artifact->plan_seconds = phase_timer.ElapsedSeconds();
  return artifact;
}

StatusOr<PreparedBatch> Engine::Prepare(const QueryBatch& batch) {
  Timer prepare_timer;
  std::vector<uint64_t> structural_key = BatchStructuralKey(batch, options_);
  const uint64_t signature = KeySignature(structural_key);
  const size_t capacity = options_.plan_cache_capacity;

  PreparedBatch prepared;
  prepared.engine_ = this;
  prepared.options_ = options_;
  bool collision = false;
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    prepared.generation_ = generation();
    auto it = plan_cache_.find(signature);
    if (it != plan_cache_.end()) {
      if (it->second.structural_key == structural_key) {
        ++plan_cache_hits_;
        if (it->second.artifact->jit != nullptr) ++jit_hits_;
        plan_lru_.splice(plan_lru_.end(), plan_lru_, it->second.lru_pos);
        prepared.artifact_ = it->second.artifact;
        prepared.from_cache_ = true;
        prepared.compile_seconds_ = prepare_timer.ElapsedSeconds();
        return prepared;
      }
      // Signature collision with a structurally different batch (~2^-64):
      // compile fresh and leave the existing entry in place.
      collision = true;
    }
    ++plan_cache_misses_;
  }

  // Compile outside the lock: concurrent Prepares of the same shape may
  // duplicate work, but never block each other on a long compile.
  LMFAO_ASSIGN_OR_RETURN(std::shared_ptr<CompiledArtifact> fresh,
                         CompileArtifact(batch));
  fresh->signature = signature;
  if (options_.jit.mode != JitMode::kOff) {
    // Kick the native backend. Failures at any stage (emission, compiler,
    // dlopen) are non-fatal: execution falls back to the interpreter
    // tiers, and plan_cache_stats() surfaces the failure.
    StatusOr<RuntimeBatchCode> code = GenerateRuntimeBatchCode(
        fresh->compiled.plans, fresh->compiled.workload, *catalog_);
    if (code.ok()) {
      fresh->jit =
          JitModule::Compile(std::move(code).value(), options_.jit);
      std::lock_guard<std::mutex> lock(plan_mu_);
      ++jit_compiles_;
      jit_modules_.push_back(fresh->jit);
    }
  }
  const std::shared_ptr<const CompiledArtifact> artifact = std::move(fresh);
  prepared.artifact_ = artifact;
  if (capacity > 0 && !collision) {
    std::lock_guard<std::mutex> lock(plan_mu_);
    // Insert only while the generation still matches the one this handle
    // carries: if InvalidateCaches ran mid-compile, the artifact stays
    // private to this (already stale) handle and the fresh cache never
    // holds it.
    if (generation() == prepared.generation_ &&
        plan_cache_.find(signature) == plan_cache_.end()) {
      plan_lru_.push_back(signature);
      PlanCacheEntry entry;
      entry.structural_key = std::move(structural_key);
      entry.artifact = artifact;
      entry.lru_pos = std::prev(plan_lru_.end());
      plan_cache_.emplace(signature, std::move(entry));
      while (plan_cache_.size() > capacity) {
        plan_cache_.erase(plan_lru_.front());
        plan_lru_.pop_front();
      }
    }
  }
  prepared.compile_seconds_ = prepare_timer.ElapsedSeconds();
  return prepared;
}

Status PreparedBatch::CheckExecutable(const ParamPack& params) const {
  if (engine_ == nullptr || artifact_ == nullptr) {
    return Status::FailedPrecondition(
        "PreparedBatch::Execute on an empty handle");
  }
  if (engine_->generation() != generation_) {
    return Status::FailedPrecondition(
        "stale PreparedBatch: Engine::InvalidateCaches ran after Prepare; "
        "re-Prepare the batch against the current data");
  }
  for (ParamId p : artifact_->required_params) {
    if (!params.Has(p)) {
      return Status::InvalidArgument(
          "PreparedBatch::Execute: unbound parameter p" + std::to_string(p));
    }
  }
  return Status::OK();
}

StatusOr<BatchResult> PreparedBatch::RunPass(const PassSpec& spec,
                                             const ParamPack& params,
                                             const ExecLimits& limits) const {
  Timer total_timer;
  // A failure parked by a void seam during some earlier pass on this
  // thread must not be blamed on this one.
  if (Failpoints::enabled()) Failpoints::ClearParked();
  BatchResult result;
  const CompiledBatch& compiled = artifact_->compiled;
  result.stats.num_queries = artifact_->num_queries;
  result.stats.num_views = artifact_->num_views;
  result.stats.num_aggregates = artifact_->num_aggregates;
  result.stats.num_groups =
      static_cast<int>(compiled.grouped.groups.size());
  // Phase times of the artifact's original compilation; this call itself
  // pays no compile (the Evaluate wrapper overwrites these two fields with
  // its measured Prepare cost).
  result.stats.viewgen_seconds = artifact_->viewgen_seconds;
  result.stats.grouping_seconds = artifact_->grouping_seconds;
  result.stats.plan_seconds = artifact_->plan_seconds;
  result.stats.compile_seconds = 0.0;
  result.stats.plan_cache_hit = true;

  // Snapshots served to this pass are pinned for its whole duration:
  // the engine's sorted cache may prune an epoch while we still read it.
  struct PinSet {
    std::mutex mu;
    std::vector<std::shared_ptr<const Relation>> pins;
  } pin_set;

  Timer exec_timer;
  ExecBackend backend;
  backend.jit = artifact_->jit.get();
  backend.simd = options_.simd_kernels;
  // The pass's shared governance token. Stack-owned: every worker the
  // context spawns joins before Run returns, so no reference escapes.
  CancelToken cancel;
  if (limits.enabled()) {
    cancel.ArmDeadline(limits.deadline_seconds);
    cancel.ArmBudget(limits.max_view_bytes);
  }
  ExecutionContext context(
      compiled.workload, compiled.grouped, compiled.plans,
      options_.scheduler,
      [this, &spec, &pin_set](
          RelationId node,
          const std::vector<AttrId>& order) -> StatusOr<const Relation*> {
        std::shared_ptr<const Relation> snap;
        if (node == spec.delta_node) {
          LMFAO_ASSIGN_OR_RETURN(
              snap, engine_->SortedDeltaSlice(node, order, spec.delta_lo,
                                              spec.delta_hi));
        } else {
          LMFAO_ASSIGN_OR_RETURN(
              snap, engine_->SortedRelationAt(node, order, spec.rows->at(node)));
        }
        const Relation* raw = snap.get();
        std::lock_guard<std::mutex> lock(pin_set.mu);
        pin_set.pins.push_back(std::move(snap));
        return raw;
      },
      &params, backend, limits.enabled() ? &cancel : nullptr);
  LMFAO_RETURN_NOT_OK(context.Run(&result.stats));
  result.stats.execute_seconds = exec_timer.ElapsedSeconds();

  // Extract query results.
  result.results.resize(static_cast<size_t>(artifact_->num_queries));
  for (QueryId q = 0; q < artifact_->num_queries; ++q) {
    const ViewId out =
        compiled.workload.query_outputs[static_cast<size_t>(q)];
    QueryResult& qr = result.results[static_cast<size_t>(q)];
    qr.query_id = q;
    qr.group_by = compiled.workload.view(out).key;
    LMFAO_ASSIGN_OR_RETURN(qr.data, context.TakeQueryResult(out));
  }
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

StatusOr<BatchResult> PreparedBatch::Execute(const ParamPack& params) const {
  return Execute(params, options_.limits);
}

StatusOr<BatchResult> PreparedBatch::Execute(const ParamPack& params,
                                             const ExecLimits& limits) const {
  if (engine_ == nullptr || artifact_ == nullptr) {
    return Status::FailedPrecondition(
        "PreparedBatch::Execute on an empty handle");
  }
  return ExecuteAt(engine_->catalog_->SnapshotEpoch(), params, limits);
}

StatusOr<BatchResult> PreparedBatch::ExecuteAt(const EpochSnapshot& epoch,
                                               const ParamPack& params) const {
  return ExecuteAt(epoch, params, options_.limits);
}

StatusOr<BatchResult> PreparedBatch::ExecuteAt(const EpochSnapshot& epoch,
                                               const ParamPack& params,
                                               const ExecLimits& limits) const {
  LMFAO_RETURN_NOT_OK(CheckExecutable(params));
  if (epoch.rows.size() !=
      static_cast<size_t>(engine_->catalog_->num_relations())) {
    return Status::InvalidArgument(
        "ExecuteAt: epoch snapshot tracks " +
        std::to_string(epoch.rows.size()) + " relations, catalog has " +
        std::to_string(engine_->catalog_->num_relations()));
  }
  PassSpec spec;
  spec.rows = &epoch;
  LMFAO_ASSIGN_OR_RETURN(BatchResult result, RunPass(spec, params, limits));
  result.epoch = epoch;
  result.artifact_signature = artifact_->signature;
  result.param_fingerprint =
      internal::ParamFingerprint(artifact_->required_params, params);
  return result;
}

StatusOr<BatchResult> PreparedBatch::ExecuteDelta(const BatchResult& base,
                                                  const ParamPack& params)
    const {
  return ExecuteDelta(base, params, options_.limits);
}

StatusOr<BatchResult> PreparedBatch::ExecuteDelta(const BatchResult& base,
                                                  const ParamPack& params,
                                                  const ExecLimits& limits)
    const {
  LMFAO_RETURN_NOT_OK(CheckExecutable(params));
  if (base.artifact_signature != artifact_->signature) {
    return Status::InvalidArgument(
        "ExecuteDelta: base result was computed by a different batch shape "
        "(artifact signature mismatch)");
  }
  const uint64_t fingerprint =
      internal::ParamFingerprint(artifact_->required_params, params);
  if (base.param_fingerprint != fingerprint) {
    return Status::InvalidArgument(
        "ExecuteDelta: base result was computed under different parameter "
        "bindings; a delta under other parameters is not a delta of it");
  }
  const Catalog& catalog = *engine_->catalog_;
  if (base.epoch.rows.size() != static_cast<size_t>(catalog.num_relations())) {
    return Status::InvalidArgument(
        "ExecuteDelta: base epoch tracks " +
        std::to_string(base.epoch.rows.size()) + " relations, catalog has " +
        std::to_string(catalog.num_relations()));
  }

  Timer total_timer;
  EpochSnapshot target = catalog.SnapshotEpoch();
  std::vector<RelationId> changed;
  size_t delta_rows = 0;
  for (RelationId r = 0; r < catalog.num_relations(); ++r) {
    const size_t old_rows = base.epoch.at(r);
    const size_t new_rows = target.at(r);
    if (new_rows < old_rows) {
      return Status::FailedPrecondition(
          "ExecuteDelta: relation " + catalog.relation(r).name() +
          " shrank below the base result's watermark — a non-append "
          "mutation happened; call Engine::InvalidateCaches and re-execute");
    }
    if (new_rows > old_rows) {
      changed.push_back(r);
      delta_rows += new_rows - old_rows;
    }
  }

  BatchResult result;
  result.results = base.results;  // Deep copy: the base stays reusable.
  result.epoch = std::move(target);
  result.artifact_signature = artifact_->signature;
  result.param_fingerprint = fingerprint;
  result.stats = base.stats;
  result.stats.compile_seconds = 0.0;
  result.stats.plan_cache_hit = true;
  result.stats.delta_execution = true;
  result.stats.delta_passes = static_cast<int>(changed.size());
  result.stats.delta_rows = delta_rows;
  result.stats.delta_dirty_groups = 0;
  result.stats.execute_seconds = 0.0;
  result.stats.groups_jit = 0;
  result.stats.groups_simd = 0;
  result.stats.groups_interp = 0;
  result.stats.limit_trips = 0;
  result.stats.degraded_groups = 0;

  // Multilinearity: summing, over changed relations c_1 < ... < c_k, the
  // batch evaluated with c_i served as its appended slice, c_1..c_{i-1} at
  // their NEW watermarks and c_{i+1}..c_k (and everything unchanged) at the
  // OLD watermarks telescopes to exactly Q(new) - Q(old).
  EpochSnapshot serve = base.epoch;
  const std::vector<GroupPlan>& plans = artifact_->compiled.plans;
  for (RelationId r : changed) {
    PassSpec spec;
    spec.rows = &serve;
    spec.delta_node = r;
    spec.delta_lo = base.epoch.at(r);
    spec.delta_hi = result.epoch.at(r);
    // Each delta term is one governed pass; a trip (or any failure)
    // propagates out here, before `result` is returned — the caller's
    // `base` is untouched and can seed a later retry.
    LMFAO_ASSIGN_OR_RETURN(BatchResult term, RunPass(spec, params, limits));
    result.stats.execute_seconds += term.stats.execute_seconds;
    result.stats.groups_jit += term.stats.groups_jit;
    result.stats.groups_simd += term.stats.groups_simd;
    result.stats.groups_interp += term.stats.groups_interp;
    result.stats.limit_trips += term.stats.limit_trips;
    result.stats.degraded_groups += term.stats.degraded_groups;
    for (const GroupPlan& plan : plans) {
      if (r < 64 && ((plan.source_relation_mask >> r) & 1)) {
        ++result.stats.delta_dirty_groups;
      }
    }
    for (size_t q = 0; q < result.results.size(); ++q) {
      result.results[q].data.MergeAdd(term.results[q].data);
    }
    serve.rows[static_cast<size_t>(r)] =
        result.epoch.at(r);  // Later terms see this relation's new extent.
  }
  result.stats.DeriveBackend();
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

StatusOr<BatchResult> Engine::Evaluate(const QueryBatch& batch,
                                       const ParamPack& params) {
  Timer total_timer;
  LMFAO_ASSIGN_OR_RETURN(PreparedBatch prepared, Prepare(batch));
  LMFAO_ASSIGN_OR_RETURN(BatchResult result, prepared.Execute(params));
  result.stats.compile_seconds = prepared.compile_seconds();
  result.stats.plan_cache_hit = prepared.from_cache();
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

StatusOr<BatchResult> Engine::Evaluate(const QueryBatch& batch,
                                       const ParamPack& params,
                                       const ExecLimits& limits) {
  Timer total_timer;
  LMFAO_ASSIGN_OR_RETURN(PreparedBatch prepared, Prepare(batch));
  LMFAO_ASSIGN_OR_RETURN(BatchResult result, prepared.Execute(params, limits));
  result.stats.compile_seconds = prepared.compile_seconds();
  result.stats.plan_cache_hit = prepared.from_cache();
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

StatusOr<std::shared_ptr<const Relation>> Engine::SortedRelationAt(
    RelationId node, const std::vector<AttrId>& order, size_t rows) {
  const Relation& base = catalog_->relation(node);
  std::vector<AttrId> sub;
  for (AttrId a : order) {
    if (base.schema().Contains(a)) sub.push_back(a);
  }

  const std::pair<RelationId, std::vector<AttrId>> key{node, sub};
  // The cache-extension seam: sorting/merging a snapshot is the largest
  // transient allocation the engine itself makes.
  LMFAO_FAILPOINT("engine.sorted_cache");
  std::shared_ptr<const Relation> prefix;  // Largest cached epoch <= rows.
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = sorted_cache_.find(key);
    if (it != sorted_cache_.end() && !it->second.empty()) {
      auto eit = it->second.upper_bound(rows);
      if (eit != it->second.begin()) {
        --eit;
        if (eit->first == rows) return eit->second;
        prefix = eit->second;
      }
    }
  }

  // Build outside the cache lock (duplicated work on a race is harmless).
  // Copy the rows the prefix is missing under a shared hold of the
  // catalog's data mutex: committed rows are immutable, but a concurrent
  // append may reallocate the column vectors mid-copy.
  const size_t lo = prefix ? prefix->num_rows() : 0;
  Relation slice;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_->data_mutex());
    if (rows > base.num_rows()) {
      return Status::InvalidArgument(
          "epoch watermark " + std::to_string(rows) + " beyond relation " +
          base.name() + " (" + std::to_string(base.num_rows()) + " rows)");
    }
    slice = base.SliceRows(lo, rows);
  }

  std::shared_ptr<const Relation> built;
  if (prefix == nullptr) {
    if (!sub.empty()) LMFAO_RETURN_NOT_OK(SortRelation(&slice, sub));
    built = std::make_shared<const Relation>(std::move(slice));
  } else if (sub.empty()) {
    Relation merged(*prefix);
    LMFAO_RETURN_NOT_OK(merged.Append(slice));
    built = std::make_shared<const Relation>(std::move(merged));
  } else {
    // Sort only the appended slice, then stable-merge (prefix first on
    // ties) — bit-identical to sorting all `rows` rows from scratch,
    // because SortPermutation breaks ties by original row index.
    LMFAO_RETURN_NOT_OK(SortRelation(&slice, sub));
    LMFAO_ASSIGN_OR_RETURN(Relation merged,
                           MergeSortedRelations(*prefix, slice, sub));
    built = std::make_shared<const Relation>(std::move(merged));
  }

  std::lock_guard<std::mutex> lock(cache_mu_);
  auto& epochs = sorted_cache_[key];
  auto [eit, inserted] = epochs.emplace(rows, built);
  if (!inserted) return eit->second;  // A racing build won; use its copy.
  // Keep only the two largest epochs per (node, order): the current one
  // and the previous (which in-flight old-epoch executions pin anyway).
  while (epochs.size() > 2) epochs.erase(epochs.begin());
  return built;
}

StatusOr<std::shared_ptr<const Relation>> Engine::SortedDeltaSlice(
    RelationId node, const std::vector<AttrId>& order, size_t lo, size_t hi) {
  const Relation& base = catalog_->relation(node);
  std::vector<AttrId> sub;
  for (AttrId a : order) {
    if (base.schema().Contains(a)) sub.push_back(a);
  }
  Relation slice;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_->data_mutex());
    if (hi > base.num_rows()) {
      return Status::InvalidArgument(
          "delta watermark " + std::to_string(hi) + " beyond relation " +
          base.name());
    }
    slice = base.SliceRows(lo, hi);
  }
  if (!sub.empty()) LMFAO_RETURN_NOT_OK(SortRelation(&slice, sub));
  return std::make_shared<const Relation>(std::move(slice));
}

}  // namespace lmfao
