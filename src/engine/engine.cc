#include "engine/engine.h"

#include <algorithm>
#include <mutex>

#include "engine/attribute_order.h"
#include "engine/executor.h"
#include "engine/parallel.h"
#include "storage/sort.h"
#include "util/timer.h"

namespace lmfao {

Engine::Engine(const Catalog* catalog, const JoinTree* tree,
               EngineOptions options)
    : catalog_(catalog), tree_(tree), options_(std::move(options)) {
  LMFAO_CHECK(catalog_ != nullptr);
  LMFAO_CHECK(tree_ != nullptr);
}

void Engine::InvalidateCaches() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  sorted_cache_.clear();
}

StatusOr<CompiledBatch> Engine::Compile(const QueryBatch& batch) const {
  CompiledBatch compiled;
  LMFAO_ASSIGN_OR_RETURN(
      compiled.workload,
      GenerateViews(batch, *catalog_, *tree_, options_.view_generation));
  LMFAO_ASSIGN_OR_RETURN(compiled.grouped,
                         GroupViews(compiled.workload, *catalog_, options_.grouping));
  for (const ViewGroup& group : compiled.grouped.groups) {
    LMFAO_ASSIGN_OR_RETURN(
        std::vector<AttrId> order,
        ComputeAttributeOrder(compiled.workload, group, *catalog_));
    LMFAO_ASSIGN_OR_RETURN(
        GroupPlan plan,
        BuildGroupPlan(compiled.workload, group, *catalog_, order,
                       options_.plan));
    compiled.attr_orders.push_back(std::move(order));
    compiled.plans.push_back(std::move(plan));
  }
  return compiled;
}

StatusOr<const Relation*> Engine::SortedRelation(
    RelationId node, const std::vector<AttrId>& order) {
  const Relation& base = catalog_->relation(node);
  std::vector<AttrId> sub;
  for (AttrId a : order) {
    if (base.schema().Contains(a)) sub.push_back(a);
  }
  if (sub.empty()) return &base;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = sorted_cache_.find({node, sub});
    if (it != sorted_cache_.end()) return it->second.get();
  }
  // Copy and sort outside the lock; duplicated work on a race is harmless.
  auto copy = std::make_unique<Relation>(base);
  LMFAO_RETURN_NOT_OK(SortRelation(copy.get(), sub));
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto [it, inserted] = sorted_cache_.emplace(
      std::make_pair(node, std::move(sub)), std::move(copy));
  return it->second.get();
}

StatusOr<BatchResult> Engine::Evaluate(const QueryBatch& batch) {
  Timer total_timer;
  BatchResult result;
  result.stats.num_queries = batch.size();

  Timer phase_timer;
  LMFAO_ASSIGN_OR_RETURN(
      Workload workload,
      GenerateViews(batch, *catalog_, *tree_, options_.view_generation));
  result.stats.viewgen_seconds = phase_timer.ElapsedSeconds();
  result.stats.num_views = workload.NumInnerViews();
  for (const ViewInfo& v : workload.views) {
    result.stats.num_aggregates += static_cast<int>(v.aggregates.size());
  }

  phase_timer.Reset();
  LMFAO_ASSIGN_OR_RETURN(GroupedWorkload grouped,
                         GroupViews(workload, *catalog_, options_.grouping));
  result.stats.grouping_seconds = phase_timer.ElapsedSeconds();
  result.stats.num_groups = static_cast<int>(grouped.groups.size());

  phase_timer.Reset();
  std::vector<GroupPlan> plans;
  plans.reserve(grouped.groups.size());
  for (const ViewGroup& group : grouped.groups) {
    LMFAO_ASSIGN_OR_RETURN(std::vector<AttrId> order,
                           ComputeAttributeOrder(workload, group, *catalog_));
    LMFAO_ASSIGN_OR_RETURN(
        GroupPlan plan,
        BuildGroupPlan(workload, group, *catalog_, order, options_.plan));
    plans.push_back(std::move(plan));
  }
  result.stats.plan_seconds = phase_timer.ElapsedSeconds();

  // Execution: produced view maps indexed by ViewId.
  phase_timer.Reset();
  std::vector<std::unique_ptr<ViewMap>> produced(workload.views.size());
  result.stats.groups.resize(grouped.groups.size());

  const int threads = options_.num_threads > 0
                          ? options_.num_threads
                          : static_cast<int>(ThreadPool::DefaultThreadCount());
  std::unique_ptr<ThreadPool> pool;
  if (options_.parallel_mode != ParallelMode::kNone && threads > 1) {
    pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
  }

  auto run_group = [&](int gid) -> Status {
    Timer group_timer;
    const ViewGroup& group = grouped.groups[static_cast<size_t>(gid)];
    const GroupPlan& plan = plans[static_cast<size_t>(gid)];
    LMFAO_ASSIGN_OR_RETURN(const Relation* rel,
                           SortedRelation(group.node, plan.attr_order));
    // Build consumed forms of the incoming views.
    std::vector<ConsumedView> consumed;
    std::vector<const ConsumedView*> consumed_ptrs;
    consumed.reserve(plan.incoming.size());
    for (const auto& in : plan.incoming) {
      const ViewMap* map = produced[static_cast<size_t>(in.view)].get();
      if (map == nullptr) {
        return Status::Internal("incoming view not yet produced");
      }
      consumed.push_back(BuildConsumedView(*map, in));
    }
    for (const ConsumedView& cv : consumed) consumed_ptrs.push_back(&cv);

    // Allocate output maps.
    std::vector<std::unique_ptr<ViewMap>> out_maps;
    std::vector<ViewMap*> out_ptrs;
    for (const auto& out : plan.outputs) {
      const ViewInfo& info = workload.view(out.view);
      out_maps.push_back(std::make_unique<ViewMap>(
          static_cast<int>(info.key.size()), out.width));
      out_ptrs.push_back(out_maps.back().get());
    }

    if (options_.parallel_mode == ParallelMode::kDomain && pool != nullptr &&
        plan.num_levels() > 0) {
      const int shards = threads;
      std::vector<std::vector<std::unique_ptr<ViewMap>>> shard_maps(
          static_cast<size_t>(shards));
      std::vector<Status> shard_status(static_cast<size_t>(shards));
      ParallelFor(pool.get(), static_cast<size_t>(shards), [&](size_t s) {
        auto& maps = shard_maps[s];
        std::vector<ViewMap*> ptrs;
        for (const auto& out : plan.outputs) {
          const ViewInfo& info = workload.view(out.view);
          maps.push_back(std::make_unique<ViewMap>(
              static_cast<int>(info.key.size()), out.width));
          ptrs.push_back(maps.back().get());
        }
        GroupExecutor executor(plan, *rel, consumed_ptrs);
        shard_status[s] =
            executor.ExecuteShard(ptrs, static_cast<int>(s), shards);
      });
      for (const Status& st : shard_status) LMFAO_RETURN_NOT_OK(st);
      for (int s = 0; s < shards; ++s) {
        for (size_t o = 0; o < out_ptrs.size(); ++o) {
          out_ptrs[o]->MergeAdd(*shard_maps[static_cast<size_t>(s)][o]);
        }
      }
    } else {
      GroupExecutor executor(plan, *rel, consumed_ptrs);
      LMFAO_RETURN_NOT_OK(executor.Execute(out_ptrs));
    }

    // Publish outputs.
    size_t entries = 0;
    for (size_t o = 0; o < plan.outputs.size(); ++o) {
      entries += out_maps[o]->size();
      produced[static_cast<size_t>(plan.outputs[o].view)] =
          std::move(out_maps[o]);
    }
    GroupStats& gs = result.stats.groups[static_cast<size_t>(gid)];
    gs.group_id = gid;
    gs.node = group.node;
    gs.num_outputs = static_cast<int>(group.outputs.size());
    gs.seconds = group_timer.ElapsedSeconds();
    gs.output_entries = entries;
    return Status::OK();
  };

  ThreadPool* task_pool =
      options_.parallel_mode == ParallelMode::kTask ? pool.get() : nullptr;
  LMFAO_RETURN_NOT_OK(ScheduleGroups(grouped, task_pool, run_group));
  result.stats.execute_seconds = phase_timer.ElapsedSeconds();

  // Extract query results.
  result.results.resize(static_cast<size_t>(batch.size()));
  for (QueryId q = 0; q < batch.size(); ++q) {
    const ViewId out = workload.query_outputs[static_cast<size_t>(q)];
    QueryResult& qr = result.results[static_cast<size_t>(q)];
    qr.query_id = q;
    qr.group_by = workload.view(out).key;
    std::unique_ptr<ViewMap>& map = produced[static_cast<size_t>(out)];
    if (map == nullptr) {
      return Status::Internal("query output was not produced");
    }
    qr.data = std::move(*map);
    map.reset();
  }
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace lmfao
