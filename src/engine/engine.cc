#include "engine/engine.h"

#include <algorithm>
#include <mutex>

#include "engine/attribute_order.h"
#include "engine/execution_context.h"
#include "storage/sort.h"
#include "util/timer.h"

namespace lmfao {

Engine::Engine(const Catalog* catalog, const JoinTree* tree,
               EngineOptions options)
    : catalog_(catalog), tree_(tree), options_(std::move(options)) {
  LMFAO_CHECK(catalog_ != nullptr);
  LMFAO_CHECK(tree_ != nullptr);
}

void Engine::InvalidateCaches() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  sorted_cache_.clear();
}

StatusOr<CompiledBatch> Engine::Compile(const QueryBatch& batch) const {
  CompiledBatch compiled;
  LMFAO_ASSIGN_OR_RETURN(
      compiled.workload,
      GenerateViews(batch, *catalog_, *tree_, options_.view_generation));
  LMFAO_ASSIGN_OR_RETURN(compiled.grouped,
                         GroupViews(compiled.workload, *catalog_, options_.grouping));
  for (const ViewGroup& group : compiled.grouped.groups) {
    LMFAO_ASSIGN_OR_RETURN(
        std::vector<AttrId> order,
        ComputeAttributeOrder(compiled.workload, group, *catalog_));
    LMFAO_ASSIGN_OR_RETURN(
        GroupPlan plan,
        BuildGroupPlan(compiled.workload, group, *catalog_, order,
                       options_.plan));
    compiled.attr_orders.push_back(std::move(order));
    compiled.plans.push_back(std::move(plan));
  }
  AssignViewForms(compiled.workload, compiled.grouped, options_.plan,
                  &compiled.plans);
  return compiled;
}

StatusOr<const Relation*> Engine::SortedRelation(
    RelationId node, const std::vector<AttrId>& order) {
  const Relation& base = catalog_->relation(node);
  std::vector<AttrId> sub;
  for (AttrId a : order) {
    if (base.schema().Contains(a)) sub.push_back(a);
  }
  if (sub.empty()) return &base;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = sorted_cache_.find({node, sub});
    if (it != sorted_cache_.end()) return it->second.get();
  }
  // Copy and sort outside the lock; duplicated work on a race is harmless.
  auto copy = std::make_unique<Relation>(base);
  LMFAO_RETURN_NOT_OK(SortRelation(copy.get(), sub));
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto [it, inserted] = sorted_cache_.emplace(
      std::make_pair(node, std::move(sub)), std::move(copy));
  return it->second.get();
}

StatusOr<BatchResult> Engine::Evaluate(const QueryBatch& batch) {
  Timer total_timer;
  BatchResult result;
  result.stats.num_queries = batch.size();

  Timer phase_timer;
  LMFAO_ASSIGN_OR_RETURN(
      Workload workload,
      GenerateViews(batch, *catalog_, *tree_, options_.view_generation));
  result.stats.viewgen_seconds = phase_timer.ElapsedSeconds();
  result.stats.num_views = workload.NumInnerViews();
  for (const ViewInfo& v : workload.views) {
    result.stats.num_aggregates += static_cast<int>(v.aggregates.size());
  }

  phase_timer.Reset();
  LMFAO_ASSIGN_OR_RETURN(GroupedWorkload grouped,
                         GroupViews(workload, *catalog_, options_.grouping));
  result.stats.grouping_seconds = phase_timer.ElapsedSeconds();
  result.stats.num_groups = static_cast<int>(grouped.groups.size());

  phase_timer.Reset();
  std::vector<GroupPlan> plans;
  plans.reserve(grouped.groups.size());
  for (const ViewGroup& group : grouped.groups) {
    LMFAO_ASSIGN_OR_RETURN(std::vector<AttrId> order,
                           ComputeAttributeOrder(workload, group, *catalog_));
    LMFAO_ASSIGN_OR_RETURN(
        GroupPlan plan,
        BuildGroupPlan(workload, group, *catalog_, order, options_.plan));
    plans.push_back(std::move(plan));
  }
  AssignViewForms(workload, grouped, options_.plan, &plans);
  result.stats.plan_seconds = phase_timer.ElapsedSeconds();

  // Execution: the runtime owns view storage, lifetime, and scheduling.
  phase_timer.Reset();
  ExecutionContext context(
      workload, grouped, plans, options_.scheduler,
      [this](RelationId node, const std::vector<AttrId>& order) {
        return SortedRelation(node, order);
      });
  LMFAO_RETURN_NOT_OK(context.Run(&result.stats));
  result.stats.execute_seconds = phase_timer.ElapsedSeconds();

  // Extract query results.
  result.results.resize(static_cast<size_t>(batch.size()));
  for (QueryId q = 0; q < batch.size(); ++q) {
    const ViewId out = workload.query_outputs[static_cast<size_t>(q)];
    QueryResult& qr = result.results[static_cast<size_t>(q)];
    qr.query_id = q;
    qr.group_by = workload.view(out).key;
    LMFAO_ASSIGN_OR_RETURN(qr.data, context.TakeQueryResult(out));
  }
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace lmfao
