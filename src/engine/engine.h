/// \file engine.h
/// \brief The LMFAO engine: end-to-end evaluation of aggregate batches.
///
/// Ties the layers together (Fig. 1): View Generation lowers the batch into
/// a workload of merged directional views; Multi-Output Optimization groups
/// the views and compiles one register program per group; execution runs the
/// groups over the join tree, sequentially or in parallel, and extracts one
/// result map per query.

#ifndef LMFAO_ENGINE_ENGINE_H_
#define LMFAO_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/grouping.h"
#include "engine/ir.h"
#include "engine/parallel.h"
#include "engine/plan.h"
#include "engine/view_generation.h"
#include "jointree/join_tree.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace lmfao {

/// \brief All engine options, including the ablation toggles benchmarked by
/// bench_ablation.
struct EngineOptions {
  ViewGenerationOptions view_generation;
  GroupingOptions grouping;
  PlanOptions plan;
  /// The unified task+domain scheduler (parallel.h). Defaults to
  /// sequential execution (num_threads = 1); any larger thread count runs
  /// the hybrid scheduler, whose task-only / domain-only degenerations are
  /// toggles on SchedulerOptions.
  SchedulerOptions scheduler;
};

/// \brief Per-group execution statistics.
struct GroupStats {
  int group_id = -1;
  RelationId node = kInvalidRelation;
  int num_outputs = 0;
  double seconds = 0.0;
  size_t output_entries = 0;
  /// Domain shards the group ran in (1 = unsharded).
  int shards = 1;
  /// Seconds the group waited between becoming ready and starting.
  double wait_seconds = 0.0;
  /// Live ViewStore bytes right after the group published its outputs and
  /// released its inputs (the view-memory frontier at this point of the
  /// schedule), split into key-side bytes (packed keys, cached hashes,
  /// occupancy) and payload bytes so layout wins stay attributable.
  size_t store_key_bytes = 0;
  size_t store_payload_bytes = 0;

  size_t store_bytes() const { return store_key_bytes + store_payload_bytes; }
};

/// \brief Statistics of one batch evaluation.
struct ExecutionStats {
  int num_queries = 0;
  int num_views = 0;        ///< Inner (directional) views after merging.
  int num_aggregates = 0;   ///< Aggregate slots across all views/outputs.
  int num_groups = 0;
  double viewgen_seconds = 0.0;
  double grouping_seconds = 0.0;
  double plan_seconds = 0.0;
  double execute_seconds = 0.0;
  double total_seconds = 0.0;
  /// Peak number of simultaneously materialized views; eager eviction
  /// keeps this below the workload's total view count on multi-group
  /// workloads.
  size_t peak_live_views = 0;
  /// Peak bytes held by the ViewStore, plus the key/payload split (each
  /// side's own peak, so the two need not sum to peak_view_bytes).
  size_t peak_view_bytes = 0;
  size_t peak_view_key_bytes = 0;
  size_t peak_view_payload_bytes = 0;
  /// Views frozen into sorted-array form (plan-layer freeze decision).
  int num_frozen_views = 0;
  std::vector<GroupStats> groups;
};

/// \brief The result of evaluating a batch.
struct BatchResult {
  std::vector<QueryResult> results;  ///< Parallel to the batch's queries.
  ExecutionStats stats;
};

/// \brief Inspection artifacts (used by the demo-style examples and the
/// structural benchmarks reproducing Fig. 2 / Fig. 3).
struct CompiledBatch {
  Workload workload;
  GroupedWorkload grouped;
  std::vector<std::vector<AttrId>> attr_orders;  ///< Per group.
  std::vector<GroupPlan> plans;                  ///< Per group.
};

/// \brief The optimization and execution engine.
///
/// The engine borrows the catalog and join tree; both must outlive it.
/// Sorted copies of node relations are cached across Evaluate calls (keyed
/// by relation and sort order); call InvalidateCaches() after mutating
/// relations.
class Engine {
 public:
  Engine(const Catalog* catalog, const JoinTree* tree,
         EngineOptions options = {});

  /// Compiles the batch through all optimization layers without executing.
  StatusOr<CompiledBatch> Compile(const QueryBatch& batch) const;

  /// Evaluates the batch end to end.
  StatusOr<BatchResult> Evaluate(const QueryBatch& batch);

  /// Drops cached sorted relations.
  void InvalidateCaches();

  const EngineOptions& options() const { return options_; }
  EngineOptions& mutable_options() { return options_; }

 private:
  /// Returns the node relation sorted by the subsequence of `order` present
  /// in it (cached). Returns the original relation when no sort is needed.
  StatusOr<const Relation*> SortedRelation(RelationId node,
                                           const std::vector<AttrId>& order);

  const Catalog* catalog_;
  const JoinTree* tree_;
  EngineOptions options_;
  std::map<std::pair<RelationId, std::vector<AttrId>>,
           std::unique_ptr<Relation>>
      sorted_cache_;
  std::mutex cache_mu_;
};

}  // namespace lmfao

#endif  // LMFAO_ENGINE_ENGINE_H_
