/// \file engine.h
/// \brief The LMFAO engine: prepare-once / execute-many evaluation of
/// aggregate batches.
///
/// Ties the layers together (Fig. 1): View Generation lowers the batch into
/// a workload of merged directional views; Multi-Output Optimization groups
/// the views and compiles one register program per group; execution runs the
/// groups over the join tree, sequentially or in parallel, and extracts one
/// result map per query.
///
/// The public surface is a prepared-statement-style split:
///
///   - `Engine::Prepare(batch)` runs all three optimization layers once and
///     returns a `PreparedBatch` handle owning the immutable compiled
///     artifact (workload, groups, attribute orders, group plans with leaf
///     factor tables and flattened register programs) plus a frozen
///     snapshot of the engine options.
///   - `PreparedBatch::Execute(params)` runs ONLY the execution layer. It
///     is repeatable and safe to call concurrently from multiple threads:
///     the compiled state is never mutated, and each Execute builds its own
///     ExecutionContext. Parameterized functions (Function::IndicatorParam)
///     resolve their threshold slots against `params` at group bind time.
///   - `Engine::Evaluate(batch, params)` remains as the one-shot
///     convenience wrapper, literally Prepare + Execute.
///
/// Prepare is backed by a *structural plan cache*: batches with equal
/// structure (group-bys, root hints, aggregate signatures — parameterized
/// functions hash their slot, not any bound constant) and equal
/// compile-relevant options share one compiled artifact, so workloads that
/// re-issue the same batch shape with different constants (CART node
/// batches, k-means iterations) compile once and execute many times.
/// `InvalidateCaches()` bumps a generation counter: existing PreparedBatch
/// handles turn stale and fail Execute with FailedPrecondition instead of
/// silently reusing sort/plan caches of mutated relations.

#ifndef LMFAO_ENGINE_ENGINE_H_
#define LMFAO_ENGINE_ENGINE_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dist/shard_spec.h"
#include "engine/grouping.h"
#include "engine/ir.h"
#include "engine/jit.h"
#include "engine/parallel.h"
#include "engine/plan.h"
#include "engine/view_generation.h"
#include "jointree/join_tree.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace lmfao {

class Engine;

/// \brief Resource limits governing one execution pass.
///
/// Enforced by a CancelToken shared across the pass's workers: checked at
/// group boundaries, after every publish, and (interpreter tiers) amortized
/// inside the trie iteration. A tripped deadline returns DeadlineExceeded,
/// a tripped memory budget ResourceExhausted; either way the pass unwinds
/// cleanly — consumed views released, partial outputs dropped, the engine's
/// caches and generation untouched — so the same PreparedBatch can be
/// re-executed afterwards. Both fields default to "unlimited"; enabling
/// them costs <2% on untripped executions (bench_e2e_batch LimitOverhead).
struct ExecLimits {
  /// Wall-clock budget in seconds for the whole pass; <= 0 = no deadline.
  double deadline_seconds = 0.0;
  /// Budget for live view memory (ViewStore bytes plus in-flight output
  /// maps); 0 = unlimited. A trip on a domain-sharded group retries once
  /// unsharded (lower peak memory) before failing the pass.
  size_t max_view_bytes = 0;

  bool enabled() const {
    return deadline_seconds > 0.0 || max_view_bytes != 0;
  }
};

/// \brief All engine options, including the ablation toggles benchmarked by
/// bench_ablation.
struct EngineOptions {
  ViewGenerationOptions view_generation;
  GroupingOptions grouping;
  PlanOptions plan;
  /// The unified task+domain scheduler (parallel.h). Defaults to
  /// sequential execution (num_threads = 1); any larger thread count runs
  /// the hybrid scheduler, whose task-only / domain-only degenerations are
  /// toggles on SchedulerOptions.
  SchedulerOptions scheduler;
  /// Maximum distinct batch shapes held by the structural plan cache
  /// (least-recently-used shapes are evicted beyond this; outstanding
  /// PreparedBatch handles keep their artifact alive regardless). 0
  /// disables caching — every Prepare compiles fresh. Execution-only: not
  /// part of the cache key.
  size_t plan_cache_capacity = 64;
  /// Runtime JIT backend (engine/jit.h): Prepare lowers the batch's plans
  /// through the runtime emitter and compiles them into a shared object;
  /// groups whose native function is ready execute it instead of the
  /// interpreter. Defaults from the environment (LMFAO_JIT=off|on|async|
  /// sync, LMFAO_JIT_CC=<compiler>); kOff when unset. The mode (on/off) is
  /// part of the plan-cache key — artifacts carry their module.
  JitOptions jit = JitOptions::FromEnv();
  /// Routes interpreter hot kernels (range sums, scratch product sums,
  /// fused beta runs) through the explicit AVX2 tier (simd_kernels.h).
  /// Bit-identical to the scalar shapes on all inputs, so it defaults on;
  /// execution-only, not part of the cache key.
  bool simd_kernels = true;
  /// Default resource limits for every Execute of batches prepared under
  /// these options; the per-call Execute(params, limits) overloads
  /// override them. Execution-only, not part of the cache key.
  ExecLimits limits;
};

/// \brief Per-group execution statistics.
struct GroupStats {
  int group_id = -1;
  RelationId node = kInvalidRelation;
  int num_outputs = 0;
  double seconds = 0.0;
  size_t output_entries = 0;
  /// Domain shards the group ran in (1 = unsharded).
  int shards = 1;
  /// Seconds the group waited between becoming ready and starting.
  double wait_seconds = 0.0;
  /// Execution backend the group ran on: "jit" (native compiled function),
  /// "simd" (interpreter with explicit AVX2 kernels), or "interp" (scalar
  /// interpreter). Points at static strings.
  const char* backend = "interp";
  /// True when the group ran below its requested tier or shape: a JIT
  /// module was configured but this group fell back to the interpreter
  /// tiers, or a memory trip forced the once-unsharded retry.
  bool degraded = false;
  /// Live ViewStore bytes right after the group published its outputs and
  /// released its inputs (the view-memory frontier at this point of the
  /// schedule), split into key-side bytes (packed keys, cached hashes,
  /// occupancy) and payload bytes so layout wins stay attributable.
  size_t store_key_bytes = 0;
  size_t store_payload_bytes = 0;

  size_t store_bytes() const { return store_key_bytes + store_payload_bytes; }
};

/// \brief One shard's figures from a sharded execution
/// (PreparedBatch::ExecuteSharded): its slice of the partitioned
/// relation, its local execute time, and the bytes it shipped to the
/// coordinator.
struct DistShardStats {
  int shard = 0;
  /// Rows of the partitioned relation in this shard's slice.
  size_t rows = 0;
  /// Local execute wall time (includes encoding the shard's views).
  double seconds = 0.0;
  /// Encoded view-exchange bytes this shard produced.
  size_t exchange_bytes = 0;
};

/// \brief Statistics of one batch evaluation.
///
/// Timing is split along the Prepare/Execute boundary: `compile_seconds`
/// is the optimization-layer time THIS call actually paid (0 when the
/// artifact came from a PreparedBatch or the plan cache), while
/// viewgen/grouping/plan_seconds record the phase breakdown of the
/// artifact's original compilation, whenever it happened.
struct ExecutionStats {
  int num_queries = 0;
  int num_views = 0;        ///< Inner (directional) views after merging.
  int num_aggregates = 0;   ///< Aggregate slots across all views/outputs.
  int num_groups = 0;
  double viewgen_seconds = 0.0;
  double grouping_seconds = 0.0;
  double plan_seconds = 0.0;
  /// Compile time paid by this call (viewgen + grouping + planning, plus
  /// cache bookkeeping). ~0 on a plan-cache hit or a prepared Execute.
  double compile_seconds = 0.0;
  /// True when this call reused a previously compiled artifact (plan-cache
  /// hit, or any Execute of an existing PreparedBatch).
  bool plan_cache_hit = false;
  double execute_seconds = 0.0;
  double total_seconds = 0.0;
  /// Peak number of simultaneously materialized views; eager eviction
  /// keeps this below the workload's total view count on multi-group
  /// workloads.
  size_t peak_live_views = 0;
  /// Peak bytes held by the ViewStore, plus the key/payload split (each
  /// side's own peak, so the two need not sum to peak_view_bytes).
  size_t peak_view_bytes = 0;
  size_t peak_view_key_bytes = 0;
  size_t peak_view_payload_bytes = 0;
  /// Views frozen into sorted-array form (plan-layer freeze decision).
  int num_frozen_views = 0;
  /// \name Delta execution (PreparedBatch::ExecuteDelta).
  /// @{
  /// True when this result was produced by folding delta passes into a
  /// previous result instead of a full execution.
  bool delta_execution = false;
  /// Delta passes run — one per relation that grew between the base
  /// result's epoch and the refresh epoch (0 = nothing changed, the base
  /// results were returned unchanged).
  int delta_passes = 0;
  /// Total appended rows propagated across all delta passes.
  size_t delta_rows = 0;
  /// Across all delta passes, group executions whose input closure
  /// (GroupPlan::source_relation_mask) contains the pass's delta relation —
  /// the groups that computed true deltas rather than replaying unchanged
  /// inputs.
  int delta_dirty_groups = 0;
  /// @}
  /// \name Sharded distributed execution (PreparedBatch::ExecuteSharded).
  /// @{
  /// True when this result was produced by merging per-shard partial
  /// results through the view-exchange / coordinator path.
  bool dist_execution = false;
  /// Effective shard count (after clamping to the partitioned relation's
  /// rows); 0 on non-sharded executions.
  int dist_shards = 0;
  /// The relation whose row ranges the shards partitioned.
  RelationId dist_relation = kInvalidRelation;
  /// Total encoded view-exchange bytes shipped from shards to the
  /// coordinator.
  size_t exchange_bytes = 0;
  /// Coordinator time: decoding shard frames and folding them into the
  /// final result maps.
  double merge_seconds = 0.0;
  /// Max / mean local execute time across shards; their ratio is the
  /// shard skew (1.0 = perfectly balanced).
  double shard_max_seconds = 0.0;
  double shard_mean_seconds = 0.0;
  std::vector<DistShardStats> dist_shard_stats;
  /// @}
  /// \name Execution backend (see GroupStats::backend).
  /// @{
  /// Group executions per backend tier this call. Delta passes accumulate
  /// across passes, so the three can sum to a multiple of num_groups.
  int groups_jit = 0;
  int groups_simd = 0;
  int groups_interp = 0;
  /// "jit" / "simd" / "interp" when every group ran one tier, "mixed"
  /// otherwise (e.g. async JIT still compiling for part of a pass).
  std::string backend = "interp";
  /// \name Resource governance (ExecLimits).
  /// Limit trips observed during the pass — deadline or memory-budget
  /// trips, including injected OOM failpoints and trips the unsharded
  /// retry recovered from — and groups that ran degraded (see
  /// GroupStats::degraded). Delta executions accumulate across passes.
  /// @{
  int limit_trips = 0;
  int degraded_groups = 0;
  /// @}
  /// Recomputes `backend` from the per-tier counters.
  void DeriveBackend() {
    const int kinds = (groups_jit > 0 ? 1 : 0) + (groups_simd > 0 ? 1 : 0) +
                      (groups_interp > 0 ? 1 : 0);
    if (kinds > 1) {
      backend = "mixed";
    } else if (groups_jit > 0) {
      backend = "jit";
    } else if (groups_simd > 0) {
      backend = "simd";
    } else {
      backend = "interp";
    }
  }
  /// @}
  std::vector<GroupStats> groups;
};

/// \brief The result of evaluating a batch.
struct BatchResult {
  std::vector<QueryResult> results;  ///< Parallel to the batch's queries.
  ExecutionStats stats;
  /// The epoch this result reflects: per-relation committed row counts at
  /// execution time. `PreparedBatch::ExecuteDelta` refreshes a result from
  /// these watermarks to the current epoch by propagating only the rows in
  /// between.
  EpochSnapshot epoch;
  /// Signature of the compiled artifact that produced this result;
  /// ExecuteDelta refuses to fold deltas computed under a different batch
  /// shape.
  uint64_t artifact_signature = 0;
  /// Hash of the bound parameter values the result was computed under;
  /// ExecuteDelta requires the same bindings (a delta under different
  /// parameters is not a delta of this result).
  uint64_t param_fingerprint = 0;
};

/// \brief Inspection artifacts (used by the demo-style examples and the
/// structural benchmarks reproducing Fig. 2 / Fig. 3).
struct CompiledBatch {
  Workload workload;
  GroupedWorkload grouped;
  std::vector<std::vector<AttrId>> attr_orders;  ///< Per group.
  std::vector<GroupPlan> plans;                  ///< Per group.
};

/// \brief The immutable product of compiling one batch shape: everything
/// the execution layer needs, plus the structural signature and the cost
/// of the original compile. Shared (by shared_ptr) between the engine's
/// plan cache and every PreparedBatch handle, and never mutated after
/// construction — which is what makes concurrent Executes safe.
struct CompiledArtifact {
  CompiledBatch compiled;
  /// Sorted distinct parameter slots the batch references; Execute
  /// validates all of them are bound before running.
  std::vector<ParamId> required_params;
  /// Structural batch signature + compile-relevant options fingerprint
  /// (the plan-cache key).
  uint64_t signature = 0;
  int num_queries = 0;
  int num_views = 0;
  int num_aggregates = 0;
  /// Phase breakdown of the original compilation.
  double viewgen_seconds = 0.0;
  double grouping_seconds = 0.0;
  double plan_seconds = 0.0;
  /// The batch's JIT module (null when the JIT is off or runtime codegen
  /// was skipped). May still be compiling (async mode): executions probe
  /// its state per group and fall back to the interpreter tiers until it
  /// is ready. Shared with the plan cache, so a cached artifact's module
  /// is reused — the compile is paid once per batch shape.
  std::shared_ptr<JitModule> jit;
};

/// \brief A compiled batch ready for repeated execution.
///
/// Obtained from `Engine::Prepare`. The handle borrows the Engine (which
/// must outlive it) and shares the immutable compiled artifact; copying a
/// PreparedBatch is cheap and copies share the artifact.
///
/// Thread safety: `Execute` / `ExecuteAt` / `ExecuteDelta` may be called
/// concurrently from any number of threads — each call builds a private
/// ExecutionContext over the shared immutable artifact, and the engine's
/// sorted-relation cache is internally synchronized. `Catalog::Append` may
/// also run concurrently with executions: each execution reads an epoch
/// snapshot, so it observes either none or all of any append.
/// `Engine::InvalidateCaches` (required after *non-append* mutations) must
/// not run while Executes are in flight; it marks this handle stale so
/// *subsequent* Executes fail cleanly.
class PreparedBatch {
 public:
  PreparedBatch() = default;

  /// Runs the execution layer over the compiled artifact. `params` binds
  /// the batch's parameterized functions (all `required_params` slots must
  /// be bound); a batch with no parameterized functions executes with the
  /// default empty pack. Fails with FailedPrecondition when the handle is
  /// stale (InvalidateCaches was called after Prepare).
  ///
  /// The execution reads the epoch snapshotted at call start: rows appended
  /// concurrently (Catalog::Append) are not observed, and the snapshot is
  /// recorded in BatchResult::epoch for later ExecuteDelta refreshes.
  ///
  /// Resource governance: the options snapshot's `limits` (when enabled)
  /// bound the pass's wall-clock and view memory; the two-argument
  /// overload overrides them per call. A tripped limit returns
  /// DeadlineExceeded / ResourceExhausted (message includes per-group
  /// progress), the pass unwinds with zero leaked views, and the handle
  /// stays valid — a subsequent Execute with laxer limits succeeds.
  StatusOr<BatchResult> Execute(const ParamPack& params = {}) const;
  StatusOr<BatchResult> Execute(const ParamPack& params,
                                const ExecLimits& limits) const;

  /// Like Execute, but pins the execution to an explicit epoch (obtained
  /// from Catalog::SnapshotEpoch), reading exactly the rows committed at
  /// that epoch regardless of appends since. The epoch must not exceed the
  /// current watermarks.
  StatusOr<BatchResult> ExecuteAt(const EpochSnapshot& epoch,
                                  const ParamPack& params = {}) const;
  StatusOr<BatchResult> ExecuteAt(const EpochSnapshot& epoch,
                                  const ParamPack& params,
                                  const ExecLimits& limits) const;

  /// Incrementally refreshes `base` (a result of Execute / ExecuteAt /
  /// ExecuteDelta of this same batch shape under the same `params`) to the
  /// current epoch, propagating only the rows appended since
  /// `base.epoch`. Returns a new result, bit-for-bit equal to a full
  /// Execute at the refresh epoch; `base` is not modified, so one base can
  /// seed many refreshes.
  ///
  /// Since every aggregate is a SUM of products of per-relation factors,
  /// the batch is multilinear in its relations: for changed relations
  /// c_1 < ... < c_k,
  ///   Q(R + dR) - Q(R) = sum_i Q(R_new for c_j<c_i, dR_i, R_old for c_j>c_i)
  /// so each pass re-runs the unchanged compiled plan with one relation
  /// served as its appended slice and the others pinned to old/new
  /// watermarks, and the pass's query outputs are added into the base
  /// results (ViewMap::MergeAdd).
  ///
  /// Errors: FailedPrecondition when the handle is stale (a non-append
  /// mutation invalidated it) or when any relation's watermark moved
  /// backwards vs `base.epoch` (non-append mutation without
  /// InvalidateCaches); InvalidArgument when `base` came from a different
  /// batch shape or different parameter bindings, or params are unbound.
  ///
  /// A failed (or limit-tripped) ExecuteDelta leaves `base` untouched and
  /// re-refreshable: the delta passes fold into a private copy of the base
  /// results, which is only returned on full success.
  StatusOr<BatchResult> ExecuteDelta(const BatchResult& base,
                                     const ParamPack& params = {}) const;
  StatusOr<BatchResult> ExecuteDelta(const BatchResult& base,
                                     const ParamPack& params,
                                     const ExecLimits& limits) const;

  /// Sharded distributed execution (src/dist/): partitions one base
  /// relation into `num_shards` row-range shards (num_shards <= 0 uses the
  /// handle's ShardSpec — see Engine::PrepareSharded), runs the unchanged
  /// compiled plans once per shard with that relation served as its slice,
  /// ships every shard's frozen query outputs through the ViewWire
  /// serialization, and folds them in the coordinator merge stage.
  /// Multilinearity makes the merged result bit-for-bit equal to Execute
  /// on integer-exact data (the per-key float summation order is shard-
  /// major and deterministic). The returned BatchResult carries the same
  /// epoch/signature/fingerprint a plain Execute would, so ExecuteDelta
  /// composes: a sharded base refreshes incrementally, and the delta slice
  /// of the partitioned relation is exactly the owning (last) shard's
  /// extension. Defined in src/dist/sharded_exec.cc.
  StatusOr<BatchResult> ExecuteSharded(int num_shards,
                                       const ParamPack& params = {}) const;
  StatusOr<BatchResult> ExecuteSharded(int num_shards,
                                       const ParamPack& params,
                                       const ExecLimits& limits) const;

  /// The sharding spec frozen into this handle (PrepareSharded); default
  /// (num_shards = 0) means ExecuteSharded picks everything per call.
  const ShardSpec& shard_spec() const { return shard_spec_; }

  bool valid() const { return artifact_ != nullptr; }
  /// The artifact accessors below require valid() (checked): an empty or
  /// moved-from handle has no artifact.
  const CompiledBatch& compiled() const {
    LMFAO_CHECK(valid());
    return artifact_->compiled;
  }
  const std::vector<ParamId>& required_params() const {
    LMFAO_CHECK(valid());
    return artifact_->required_params;
  }
  /// The engine options frozen at Prepare time; Execute always uses this
  /// snapshot (later Engine::mutable_options() mutations affect only
  /// future Prepares).
  const EngineOptions& options() const { return options_; }
  uint64_t signature() const {
    LMFAO_CHECK(valid());
    return artifact_->signature;
  }
  /// True when Prepare served this handle from the plan cache.
  bool from_cache() const { return from_cache_; }
  /// Compile time paid by the Prepare call that produced this handle
  /// (~0 when from_cache()).
  double compile_seconds() const { return compile_seconds_; }

 private:
  friend class Engine;

  /// One execution pass over the compiled plans: every relation is served
  /// at the extent `rows` says — except `delta_node` (when valid), which is
  /// served as its row slice [delta_lo, delta_hi) instead. The shared
  /// machinery behind ExecuteAt (no delta node), each ExecuteDelta term
  /// (the slice is the relation's appended rows), and each ExecuteSharded
  /// shard (the slice is the shard's partition of the relation).
  struct PassSpec {
    const EpochSnapshot* rows = nullptr;
    RelationId delta_node = kInvalidRelation;
    size_t delta_lo = 0;
    size_t delta_hi = 0;
  };
  StatusOr<BatchResult> RunPass(const PassSpec& spec, const ParamPack& params,
                                const ExecLimits& limits) const;

  /// Validates the handle and the bound params (the common preamble of
  /// every Execute flavor).
  Status CheckExecutable(const ParamPack& params) const;

  Engine* engine_ = nullptr;
  std::shared_ptr<const CompiledArtifact> artifact_;
  EngineOptions options_;
  uint64_t generation_ = 0;
  bool from_cache_ = false;
  double compile_seconds_ = 0.0;
  /// Sharding defaults for ExecuteSharded (set by Engine::PrepareSharded;
  /// inert otherwise).
  ShardSpec shard_spec_;
};

/// \brief The optimization and execution engine.
///
/// The engine borrows the catalog and join tree; both must outlive it (as
/// must every PreparedBatch handle it hands out — handles borrow the
/// engine).
///
/// Caching: sorted copies of node relations are cached across executions
/// (keyed by relation, sort order, and epoch watermark — appends extend a
/// cached snapshot by sort-and-merge of the appended slice instead of a
/// full re-sort), and compiled artifacts are cached by batch structure
/// (see Prepare) — bounded to `EngineOptions::plan_cache_capacity` shapes
/// with LRU eviction, every hit verified against the exact structural key
/// (a signature-hash collision recompiles instead of serving the wrong
/// plans). Appends through `Catalog::Append` invalidate NOTHING: handles
/// stay valid and executions read epoch snapshots. After any *non-append*
/// mutation, call `InvalidateCaches()` — it drops both caches and bumps
/// the generation counter, so outstanding PreparedBatch handles fail their
/// next Execute instead of reading stale sorted data.
///
/// `mutable_options()` semantics: options are snapshotted into the
/// PreparedBatch at Prepare time. Mutations affect only future Prepares
/// (and Evaluates, which Prepare internally); already-prepared handles
/// keep executing under their snapshot. Compile-relevant options
/// (view_generation, grouping, plan) are part of the plan-cache key, so
/// toggling them never serves a mismatched cached artifact; scheduler
/// options do not key the cache (they are execution-only) but are frozen
/// per handle.
class Engine {
 public:
  Engine(const Catalog* catalog, const JoinTree* tree,
         EngineOptions options = {});

  /// Compiles the batch through all optimization layers without executing.
  StatusOr<CompiledBatch> Compile(const QueryBatch& batch) const;

  /// Compiles the batch (or fetches the structurally equal compiled
  /// artifact from the plan cache) and returns the execute-many handle.
  StatusOr<PreparedBatch> Prepare(const QueryBatch& batch);

  /// Prepare plus a frozen sharding spec: the handle's ExecuteSharded
  /// defaults to `spec` (per-call shard counts still override it). A
  /// pinned `spec.relation` is validated against the compiled plans here,
  /// so an ineligible relation fails at prepare time, not mid-execution.
  /// Defined in src/dist/sharded_exec.cc.
  StatusOr<PreparedBatch> PrepareSharded(const QueryBatch& batch,
                                         const ShardSpec& spec);

  /// One-shot convenience: Prepare + Execute. `params` binds parameterized
  /// functions, as in PreparedBatch::Execute. The three-argument overload
  /// bounds the execution pass with `limits` (overriding the options
  /// snapshot), as in PreparedBatch::Execute(params, limits) — the serving
  /// layer uses it to give ad-hoc queries the same deadline budget as
  /// prepared ones.
  StatusOr<BatchResult> Evaluate(const QueryBatch& batch,
                                 const ParamPack& params = {});
  StatusOr<BatchResult> Evaluate(const QueryBatch& batch,
                                 const ParamPack& params,
                                 const ExecLimits& limits);

  /// Drops cached sorted relations and compiled artifacts, and bumps the
  /// generation counter: every PreparedBatch handed out so far becomes
  /// stale. Call after mutating relations. Must not run concurrently with
  /// in-flight Executes.
  void InvalidateCaches();

  /// Monotonic cache generation; PreparedBatch handles are valid only for
  /// the generation they were prepared under.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// \brief Plan-cache observability (for benches and tests).
  struct PlanCacheStats {
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
    /// Prepares served a cached artifact that carries a JIT module.
    size_t jit_hits = 0;
    /// JIT module compilations kicked off by Prepare.
    size_t jit_compiles = 0;
    /// Modules that reached a terminal failed state (so far).
    size_t jit_failures = 0;
    /// Total compiler+link wall-clock of terminal modules still alive, ms.
    double jit_compile_ms = 0.0;
  };
  PlanCacheStats plan_cache_stats() const;

  const EngineOptions& options() const { return options_; }
  /// See the class comment for the post-Prepare mutation contract.
  EngineOptions& mutable_options() { return options_; }

 private:
  friend class PreparedBatch;

  /// Returns the node relation restricted to its first `rows` committed
  /// rows, sorted by the subsequence of `order` present in it. Snapshots
  /// are immutable, shared, and cached per (node, order, rows); extending a
  /// cached smaller epoch costs a sort of the appended slice plus one
  /// linear stable merge (bit-identical to re-sorting from scratch, see
  /// MergeSortedRelations), not a full re-sort. At most the two largest
  /// epochs per (node, order) stay cached; executions pin the snapshots
  /// they read, so pruning never invalidates an in-flight pass.
  StatusOr<std::shared_ptr<const Relation>> SortedRelationAt(
      RelationId node, const std::vector<AttrId>& order, size_t rows);

  /// Builds rows [lo, hi) of `node` sorted by `order`'s subsequence — the
  /// delta slice of one ExecuteDelta term. Uncached (slices are small and
  /// read once per consuming group).
  StatusOr<std::shared_ptr<const Relation>> SortedDeltaSlice(
      RelationId node, const std::vector<AttrId>& order, size_t lo,
      size_t hi);

  /// Compiles a fresh artifact (all three layers) for `batch` — the one
  /// compile pipeline behind both Compile and Prepare. The caller sets
  /// the signature before freezing the artifact const.
  StatusOr<std::shared_ptr<CompiledArtifact>> CompileArtifact(
      const QueryBatch& batch) const;

  const Catalog* catalog_;
  const JoinTree* tree_;
  EngineOptions options_;
  /// (node, sort order) -> epoch (row watermark) -> immutable sorted
  /// snapshot. Ordered by epoch so extension finds the largest cached
  /// prefix <= the requested watermark.
  std::map<std::pair<RelationId, std::vector<AttrId>>,
           std::map<size_t, std::shared_ptr<const Relation>>>
      sorted_cache_;
  std::mutex cache_mu_;

  /// Structural plan cache: signature -> (exact structural key, artifact,
  /// LRU position). The signature is a 64-bit hash of the structural key;
  /// every hit verifies the full key, so a hash collision degrades to a
  /// fresh compile instead of silently serving another shape's plans.
  /// Bounded to EngineOptions::plan_cache_capacity shapes, LRU-evicted.
  struct PlanCacheEntry {
    std::vector<uint64_t> structural_key;
    std::shared_ptr<const CompiledArtifact> artifact;
    std::list<uint64_t>::iterator lru_pos;
  };
  std::unordered_map<uint64_t, PlanCacheEntry> plan_cache_;
  /// Signatures in recency order: least-recently-used at the front.
  std::list<uint64_t> plan_lru_;
  size_t plan_cache_hits_ = 0;
  size_t plan_cache_misses_ = 0;
  /// JIT observability (under plan_mu_): kick/hit counters plus weak refs
  /// to every module this engine started, for failure/latency aggregation
  /// in plan_cache_stats() without pinning dead artifacts.
  size_t jit_hits_ = 0;
  size_t jit_compiles_ = 0;
  mutable std::vector<std::weak_ptr<JitModule>> jit_modules_;
  mutable std::mutex plan_mu_;

  /// Bumped (and the plan cache cleared) atomically under plan_mu_, so a
  /// racing Prepare can never pair the new generation with a stale cache
  /// entry.
  std::atomic<uint64_t> generation_{0};
};

namespace internal {

/// Hash of the bound values of the batch's required parameter slots.
/// Recorded in BatchResult so ExecuteDelta / ExecuteSharded can verify
/// results were computed under the same bindings. Defined in engine.cc;
/// exposed here for the sharded-execution layer (src/dist/).
uint64_t ParamFingerprint(const std::vector<ParamId>& required,
                          const ParamPack& params);

}  // namespace internal

}  // namespace lmfao

#endif  // LMFAO_ENGINE_ENGINE_H_
