/// \file attribute_order.h
/// \brief Per-group total orders on join attributes.
///
/// The Multi-Output Optimization layer constructs, for each view group, a
/// total order on the attributes over which the group's relation and
/// incoming views are organized as tries (Section 2). The order determines
/// where view lookups complete, where outputs are written, and how much
/// computation can be hoisted out of inner loops, so the heuristic aims to:
///   1. put key attributes of *outgoing views* first — their writes then
///      happen at the shallowest levels and the views are produced in key
///      order;
///   2. among the rest, greedily pick attributes that complete the keys of
///      as many incoming views as possible (lookups become loop-invariant
///      early, Fig. 3's alpha registers);
///   3. break ties towards attributes referenced by more incoming views,
///      then smaller estimated domains.

#ifndef LMFAO_ENGINE_ATTRIBUTE_ORDER_H_
#define LMFAO_ENGINE_ATTRIBUTE_ORDER_H_

#include <vector>

#include "engine/ir.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace lmfao {

/// \brief Computes the trie attribute order for one group.
///
/// The order contains exactly the union of incoming-view key attributes and
/// output key attributes; attributes used only inside local factors are
/// handled at the leaf (per-tuple) level by the executor.
StatusOr<std::vector<AttrId>> ComputeAttributeOrder(
    const Workload& workload, const ViewGroup& group, const Catalog& catalog);

}  // namespace lmfao

#endif  // LMFAO_ENGINE_ATTRIBUTE_ORDER_H_
