/// \file report.h
/// \brief Human-readable reports over compiled batches and execution stats
/// — the textual counterpart of the demo UI's panels (Fig. 4).

#ifndef LMFAO_ENGINE_REPORT_H_
#define LMFAO_ENGINE_REPORT_H_

#include <string>

#include "engine/engine.h"
#include "serve/stats.h"

namespace lmfao {

/// \brief The View Generation panel: per-edge view counts ("arrow widths"),
/// the merged views, and per-query roots.
std::string ReportViewGeneration(const CompiledBatch& compiled,
                                 const Catalog& catalog);

/// \brief The View Groups panel: groups, their nodes, outputs and
/// dependencies.
std::string ReportViewGroups(const CompiledBatch& compiled,
                             const Catalog& catalog);

/// \brief Execution breakdown: per-phase and per-group timings.
std::string ReportExecution(const ExecutionStats& stats,
                            const Catalog& catalog);

/// \brief Serving panel: per-class admission / shedding / retry counters
/// and latency percentiles of a Server's lifetime (serve/server.h).
std::string ReportServing(const ServerStats& stats);

}  // namespace lmfao

#endif  // LMFAO_ENGINE_REPORT_H_
