/// \file merge.cc
/// \brief Implementations of the workload IR helpers (signatures, printing,
/// topological ordering). The merge registry itself lives inside the view
/// generator (view_generation.cc); this file provides the structural
/// signature it keys on.

#include <deque>
#include <sstream>

#include "engine/ir.h"
#include "util/hash.h"

namespace lmfao {

uint64_t ViewAggregate::Signature() const {
  uint64_t h = 0x243f6a8885a308d3ULL;
  for (const Factor& f : local_factors) h = HashCombine(h, f.Signature());
  h = HashCombine(h, 0xfeedULL);
  for (const auto& [view, slot] : child_refs) {
    h = HashCombine(h, Mix64(static_cast<uint64_t>(view) * 1000003u +
                             static_cast<uint64_t>(slot)));
  }
  return h;
}

std::string ViewInfo::ToString(const Catalog& catalog) const {
  std::ostringstream out;
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(catalog.num_attrs()));
  for (AttrId a = 0; a < catalog.num_attrs(); ++a) {
    names.push_back(catalog.attr(a).name);
  }
  if (IsQueryOutput()) {
    out << "Q" << query_id << "[root=" << catalog.relation(origin).name()
        << "]";
  } else {
    out << "V" << id << "[" << catalog.relation(origin).name() << "->"
        << catalog.relation(target).name() << "]";
  }
  out << "(";
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) out << ",";
    out << names[static_cast<size_t>(key[i])];
  }
  out << " | ";
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (i > 0) out << ", ";
    const ViewAggregate& agg = aggregates[i];
    bool first = true;
    if (agg.local_factors.empty() && agg.child_refs.empty()) {
      out << "1";
      first = false;
    }
    for (const Factor& f : agg.local_factors) {
      if (!first) out << "*";
      first = false;
      Aggregate one({f});
      std::string s = one.ToString(&names);
      // Strip the "SUM(...)" wrapper; the slot prints as a product.
      out << s.substr(4, s.size() - 5);
    }
    for (const auto& [view, slot] : agg.child_refs) {
      if (!first) out << "*";
      first = false;
      out << "V" << view << "." << slot;
    }
  }
  out << ")";
  return out.str();
}

int Workload::NumInnerViews() const {
  int n = 0;
  for (const ViewInfo& v : views) {
    if (!v.IsQueryOutput()) ++n;
  }
  return n;
}

std::unordered_map<uint64_t, int> Workload::ViewsPerDirection() const {
  std::unordered_map<uint64_t, int> out;
  for (const ViewInfo& v : views) {
    if (v.IsQueryOutput()) continue;
    const uint64_t key = (static_cast<uint64_t>(v.origin) << 32) |
                         static_cast<uint32_t>(v.target);
    ++out[key];
  }
  return out;
}

std::string Workload::ToString(const Catalog& catalog) const {
  std::ostringstream out;
  for (const ViewInfo& v : views) {
    out << "  " << v.ToString(catalog) << "\n";
  }
  return out.str();
}

std::string ViewGroup::ToString(const Workload& workload,
                                const Catalog& catalog) const {
  std::ostringstream out;
  out << "Group " << id << " @ " << catalog.relation(node).name() << ":";
  for (ViewId v : outputs) {
    out << " " << workload.view(v).ToString(catalog);
  }
  if (!depends_on.empty()) {
    out << "  [depends on:";
    for (int g : depends_on) out << " " << g;
    out << "]";
  }
  return out.str();
}

std::vector<int> GroupedWorkload::TopologicalOrder() const {
  const size_t n = groups.size();
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<int>> successors(n);
  for (const ViewGroup& g : groups) {
    for (int dep : g.depends_on) {
      successors[static_cast<size_t>(dep)].push_back(g.id);
      ++indegree[static_cast<size_t>(g.id)];
    }
  }
  std::deque<int> ready;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    const int g = ready.front();
    ready.pop_front();
    order.push_back(g);
    for (int s : successors[static_cast<size_t>(g)]) {
      if (--indegree[static_cast<size_t>(s)] == 0) ready.push_back(s);
    }
  }
  LMFAO_CHECK_EQ(order.size(), n) << "cycle in group dependency graph";
  return order;
}

std::string GroupedWorkload::ToString(const Workload& workload,
                                      const Catalog& catalog) const {
  std::ostringstream out;
  for (const ViewGroup& g : groups) {
    out << g.ToString(workload, catalog) << "\n";
  }
  return out.str();
}

}  // namespace lmfao
