#include "engine/report.h"

#include <sstream>

#include "util/string_util.h"

namespace lmfao {

std::string ReportViewGeneration(const CompiledBatch& compiled,
                                 const Catalog& catalog) {
  std::ostringstream out;
  out << "View Generation\n";
  out << "  queries: " << compiled.workload.query_outputs.size()
      << ", merged views: " << compiled.workload.NumInnerViews() << "\n";
  out << "  roots:\n";
  for (size_t q = 0; q < compiled.workload.roots.size(); ++q) {
    out << "    Q" << q << " -> "
        << catalog.relation(compiled.workload.roots[q]).name() << "\n";
  }
  out << "  views per direction (arrow widths):\n";
  for (const auto& [key, count] : compiled.workload.ViewsPerDirection()) {
    const RelationId origin = static_cast<RelationId>(key >> 32);
    const RelationId target = static_cast<RelationId>(key & 0xffffffff);
    out << "    " << catalog.relation(origin).name() << " -> "
        << catalog.relation(target).name() << ": " << count << "\n";
  }
  out << "  views:\n";
  for (const ViewInfo& v : compiled.workload.views) {
    out << "    " << v.ToString(catalog) << "\n";
  }
  return out.str();
}

std::string ReportViewGroups(const CompiledBatch& compiled,
                             const Catalog& catalog) {
  std::ostringstream out;
  out << "View Groups (" << compiled.grouped.groups.size() << ")\n";
  for (const ViewGroup& g : compiled.grouped.groups) {
    out << "  " << g.ToString(compiled.workload, catalog) << "\n";
    out << "    attribute order:";
    for (AttrId a : compiled.attr_orders[static_cast<size_t>(g.id)]) {
      out << " " << catalog.attr(a).name;
    }
    const GroupPlan& plan = compiled.plans[static_cast<size_t>(g.id)];
    out << "  (" << plan.alphas.size() << " alphas, " << plan.betas.size()
        << " betas, " << plan.leaf_sums.size() << " leaf sums)\n";
  }
  return out.str();
}

std::string ReportExecution(const ExecutionStats& stats,
                            const Catalog& catalog) {
  std::ostringstream out;
  out << "Execution\n";
  out << StringPrintf(
      "  %d queries -> %d views (%d aggregate slots) in %d groups\n",
      stats.num_queries, stats.num_views, stats.num_aggregates,
      stats.num_groups);
  out << StringPrintf(
      "  compile %.2f ms%s (view generation %.2f + grouping %.2f + "
      "planning %.2f), execute %.2f ms, total %.2f ms\n",
      stats.compile_seconds * 1e3, stats.plan_cache_hit ? " [cached]" : "",
      stats.viewgen_seconds * 1e3, stats.grouping_seconds * 1e3,
      stats.plan_seconds * 1e3, stats.execute_seconds * 1e3,
      stats.total_seconds * 1e3);
  out << StringPrintf(
      "  backend: %s (%d jit / %d simd / %d interp group executions)\n",
      stats.backend.c_str(), stats.groups_jit, stats.groups_simd,
      stats.groups_interp);
  if (stats.delta_execution) {
    out << StringPrintf(
        "  delta refresh: %d pass%s over %zu appended rows, %d dirty group "
        "executions\n",
        stats.delta_passes, stats.delta_passes == 1 ? "" : "es",
        stats.delta_rows, stats.delta_dirty_groups);
  }
  if (stats.dist_execution) {
    const double skew =
        stats.shard_mean_seconds > 0.0
            ? stats.shard_max_seconds / stats.shard_mean_seconds
            : 1.0;
    out << StringPrintf(
        "  sharded: %d shards of %s, exchange %zu bytes, merge %.2f ms, "
        "shard max/mean %.2f/%.2f ms (skew %.2f)\n",
        stats.dist_shards,
        stats.dist_relation == kInvalidRelation
            ? "?"
            : catalog.relation(stats.dist_relation).name().c_str(),
        stats.exchange_bytes, stats.merge_seconds * 1e3,
        stats.shard_max_seconds * 1e3, stats.shard_mean_seconds * 1e3, skew);
    for (const DistShardStats& s : stats.dist_shard_stats) {
      out << StringPrintf("    shard %d: %zu rows, %.2f ms, %zu bytes\n",
                          s.shard, s.rows, s.seconds * 1e3, s.exchange_bytes);
    }
  }
  constexpr double kMiB = 1024.0 * 1024.0;
  out << StringPrintf(
      "  view store: peak %zu live views (%.2f MiB peak: %.2f key + %.2f "
      "payload), %d frozen\n",
      stats.peak_live_views,
      static_cast<double>(stats.peak_view_bytes) / kMiB,
      static_cast<double>(stats.peak_view_key_bytes) / kMiB,
      static_cast<double>(stats.peak_view_payload_bytes) / kMiB,
      stats.num_frozen_views);
  for (const GroupStats& g : stats.groups) {
    out << StringPrintf(
        "    group %d @ %-14s %8.2f ms [%s], %d outputs, %zu entries, "
        "%d shard%s, waited %.2f ms, store %.2f MiB (%.2f key + %.2f "
        "payload)\n",
        g.group_id, catalog.relation(g.node).name().c_str(), g.seconds * 1e3,
        g.backend, g.num_outputs, g.output_entries, g.shards,
        g.shards == 1 ? "" : "s", g.wait_seconds * 1e3,
        static_cast<double>(g.store_bytes()) / kMiB,
        static_cast<double>(g.store_key_bytes) / kMiB,
        static_cast<double>(g.store_payload_bytes) / kMiB);
  }
  return out.str();
}

std::string ReportServing(const ServerStats& stats) {
  std::ostringstream out;
  out << "Serving\n";
  out << StringPrintf(
      "  %-17s %9s %9s %6s %6s %6s %8s %7s %6s %9s %9s %9s\n", "class",
      "submitted", "admitted", "shed", "ok", "fail", "retries", "ddl", "degr",
      "p50 ms", "p95 ms", "p99 ms");
  auto row = [&out](const char* name, const ClassStats& c) {
    out << StringPrintf(
        "  %-17s %9llu %9llu %6llu %6llu %6llu %8llu %7llu %6llu %9.2f "
        "%9.2f %9.2f\n",
        name, static_cast<unsigned long long>(c.submitted),
        static_cast<unsigned long long>(c.admitted),
        static_cast<unsigned long long>(c.shed_queue_full + c.shed_watermark),
        static_cast<unsigned long long>(c.completed_ok),
        static_cast<unsigned long long>(c.failed),
        static_cast<unsigned long long>(c.retries),
        static_cast<unsigned long long>(c.deadline_trips),
        static_cast<unsigned long long>(c.degraded),
        c.latency.Percentile(50) * 1e3, c.latency.Percentile(95) * 1e3,
        c.latency.Percentile(99) * 1e3);
  };
  for (size_t i = 0; i < kNumRequestClasses; ++i) {
    row(RequestClassName(static_cast<RequestClass>(i)), stats.classes[i]);
  }
  row("total", stats.Totals());
  const ClassStats total = stats.Totals();
  out << StringPrintf(
      "  queue depth high-water: %zu (per class:",
      stats.total_queue_depth_highwater);
  for (size_t i = 0; i < kNumRequestClasses; ++i) {
    out << StringPrintf(" %zu", stats.classes[i].queue_depth_highwater);
  }
  out << ")\n";
  if (total.expired_in_queue > 0 || total.rejected_draining > 0) {
    out << StringPrintf(
        "  expired in queue: %llu, rejected while draining: %llu\n",
        static_cast<unsigned long long>(total.expired_in_queue),
        static_cast<unsigned long long>(total.rejected_draining));
  }
  return out.str();
}

}  // namespace lmfao
