#include "engine/codegen.h"

#include <map>
#include <set>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace lmfao {
namespace {

/// Collects the relation columns used by a plan.
std::set<int> UsedColumns(const GroupPlan& plan) {
  std::set<int> cols;
  for (int c : plan.level_column) cols.insert(c);
  for (const auto& sum : plan.leaf_sums) {
    for (const auto& [col, fn] : sum.factors) {
      (void)fn;
      cols.insert(col);
    }
  }
  for (const auto& w : plan.leaf_writes) {
    for (const auto& [col, fn] : w.leaf_factors) {
      (void)fn;
      cols.insert(col);
    }
  }
  return cols;
}

/// Visits every Function the plan references (register parts and leaf
/// factors) — the one scan behind dictionary and parameter collection.
template <typename Fn>
void ForEachFunction(const GroupPlan& plan, Fn&& visit) {
  auto scan_parts = [&visit](const std::vector<PlanPart>& parts) {
    for (const PlanPart& p : parts) {
      if (!p.is_view()) visit(p.factor.fn);
    }
  };
  for (const auto& a : plan.alphas) scan_parts(a.parts);
  for (const auto& b : plan.betas) scan_parts(b.parts);
  for (const auto& s : plan.leaf_sums) {
    for (const auto& [col, fn] : s.factors) {
      (void)col;
      visit(fn);
    }
  }
  for (const auto& w : plan.leaf_writes) {
    scan_parts(w.parts);
    for (const auto& [col, fn] : w.leaf_factors) {
      (void)col;
      visit(fn);
    }
  }
}

/// Collects dictionary functions referenced by the plan.
std::set<const FunctionDict*> UsedDicts(const GroupPlan& plan) {
  std::set<const FunctionDict*> dicts;
  ForEachFunction(plan, [&dicts](const Function& fn) {
    if (fn.kind() == FunctionKind::kDictionary) dicts.insert(fn.dict().get());
  });
  return dicts;
}

/// Distinct parameter slots referenced by the plan, sorted (the dense
/// order the runtime host marshals LmfaoJitInput::params in).
std::vector<ParamId> UsedParams(const GroupPlan& plan) {
  std::set<ParamId> ids;
  ForEachFunction(plan, [&ids](const Function& fn) {
    if (fn.IsParameterized()) ids.insert(fn.param());
  });
  return std::vector<ParamId>(ids.begin(), ids.end());
}

const char* IndicatorOpStr(FunctionKind kind) {
  switch (kind) {
    case FunctionKind::kIndicatorLe:
      return "<=";
    case FunctionKind::kIndicatorLt:
      return "<";
    case FunctionKind::kIndicatorGe:
      return ">=";
    case FunctionKind::kIndicatorGt:
      return ">";
    case FunctionKind::kIndicatorEq:
      return "==";
    case FunctionKind::kIndicatorNe:
      return "!=";
    default:
      LMFAO_CHECK(false) << "not an indicator kind";
      return "";
  }
}

/// Binary-search helpers every emitted loop nest uses. Emitted once per
/// translation unit (standalone program or runtime batch).
const char kSearchHelpers[] =
    "static inline size_t seek(const int64_t* a, size_t lo, size_t hi, "
    "int64_t v) {\n"
    "  while (lo < hi) {\n"
    "    size_t mid = (lo + hi) / 2;\n"
    "    if (a[mid] < v) lo = mid + 1; else hi = mid;\n"
    "  }\n"
    "  return lo;\n"
    "}\n"
    "static inline size_t run_end(const int64_t* a, size_t lo, size_t hi, "
    "int64_t v) {\n"
    "  while (lo < hi) {\n"
    "    size_t mid = (lo + hi) / 2;\n"
    "    if (a[mid] <= v) lo = mid + 1; else hi = mid;\n"
    "  }\n"
    "  return lo;\n"
    "}\n";

/// Range-sum helper: the interpreter's exact four-accumulator reduction
/// shape (payload_columns.h SumRange), so generated code and interpreter
/// produce bit-identical range sums on all data.
const char kSumRangeHelper[] =
    "static inline double sum_range(const double* col, size_t lo, size_t "
    "hi) {\n"
    "  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;\n"
    "  size_t i = lo;\n"
    "  for (; i + 4 <= hi; i += 4) {\n"
    "    s0 += col[i];\n"
    "    s1 += col[i + 1];\n"
    "    s2 += col[i + 2];\n"
    "    s3 += col[i + 3];\n"
    "  }\n"
    "  for (; i < hi; ++i) s0 += col[i];\n"
    "  return (s0 + s1) + (s2 + s3);\n"
    "}\n";

/// Emits one dictionary function definition as a dense switch table.
void EmitDictDefinition(std::ostringstream& out, const std::string& symbol,
                        const FunctionDict& d, bool internal_linkage) {
  out << (internal_linkage ? "static " : "") << "double " << symbol
      << "(double x) {\n";
  out << "  switch (static_cast<int64_t>(x)) {\n";
  for (const auto& [k, v] : d.table) {
    out << "    case " << k << "ll: return " << StringPrintf("%.17g", v)
        << ";\n";
  }
  out << "    default: return " << StringPrintf("%.17g", d.default_value)
      << ";\n  }\n}\n\n";
}

/// Emitter for one group's function.
///
/// Two modes share the entire loop-nest / register / write lowering — the
/// core emits against local aliases (rel_<attr>, v<N>_size / _k<C> /
/// _payload / _estride / _sstride, shard, num_shards, par<K>, up<O>) that
/// only the per-mode prologue binds differently:
///
///   - kStandalone: the offline validator form. Aliases read the embedded
///     `Input` struct; payload strides are compile-time constants; shard is
///     pinned to 0/1; writes go to std::unordered_map outputs; function
///     parameters are rejected (standalone programs bake constants in).
///   - kRuntime: the JIT form (`extern "C" lmfao_jit_group_<id>`). Aliases
///     read the LmfaoJitInput ABI struct (jit.h); payload strides come from
///     the view descriptors so row-major and borrowed-columnar layouts both
///     work; shard/num_shards come from the caller; writes go through the
///     host upsert callback; parameterized thresholds read the dense
///     params array.
///
/// Because the body text is produced by one code path, the offline
/// validator and the runtime JIT cannot drift.
class GroupEmitter {
 public:
  enum class Mode { kStandalone, kRuntime };

  GroupEmitter(Mode mode, const GroupPlan& plan, const Workload& workload,
               const Catalog& catalog,
               const std::map<const FunctionDict*, std::string>* dict_syms =
                   nullptr)
      : mode_(mode),
        plan_(plan),
        workload_(workload),
        catalog_(catalog),
        rel_(catalog.relation(plan.node)),
        dict_syms_(dict_syms),
        param_order_(UsedParams(plan)) {
    const std::set<int> cols = UsedColumns(plan);
    used_cols_.assign(cols.begin(), cols.end());
    for (size_t i = 0; i < param_order_.size(); ++i) {
      param_dense_[param_order_[i]] = static_cast<int>(i);
    }
  }

  std::string EmitFunction() {
    std::ostringstream out;
    EmitHeaderComment(out);
    if (mode_ == Mode::kStandalone) EmitStructs(out);
    EmitBody(out);
    return out.str();
  }

  const std::vector<int>& used_cols() const { return used_cols_; }
  const std::vector<ParamId>& param_order() const { return param_order_; }
  std::string Symbol() const {
    return (mode_ == Mode::kRuntime ? "lmfao_jit_group_" : "lmfao_group_") +
           std::to_string(plan_.group_id);
  }

 private:
  int ViewArity(const GroupPlan::IncomingView& in) const {
    return static_cast<int>(in.key_perm.size() + in.extra_perm.size());
  }

  void EmitHeaderComment(std::ostringstream& out) {
    out << "// Generated by LMFAO's Code Generation layer.\n";
    out << "// Group " << plan_.group_id << " over relation " << rel_.name()
        << "; attribute order:";
    for (AttrId a : plan_.attr_order) out << " " << catalog_.attr(a).name;
    out << "\n// Outputs:";
    for (const auto& o : plan_.outputs) {
      out << " " << workload_.view(o.view).ToString(catalog_);
    }
    out << "\n\n";
  }

  std::string RelCol(int col) {
    return "rel_" + catalog_.attr(rel_.schema().attr(col)).name;
  }

  std::string DictSymbol(const FunctionDict* d) const {
    if (mode_ == Mode::kRuntime) {
      LMFAO_CHECK(dict_syms_ != nullptr);
      const auto it = dict_syms_->find(d);
      LMFAO_CHECK(it != dict_syms_->end());
      return it->second;
    }
    return "dict_" + d->name;
  }

  std::string ParamVar(ParamId id) const {
    const auto it = param_dense_.find(id);
    LMFAO_CHECK(it != param_dense_.end());
    return "par" + std::to_string(it->second);
  }

  void EmitStructs(std::ostringstream& out) {
    std::set<int> arities;
    for (const auto& o : plan_.outputs) {
      if (!o.key_sources.empty()) {
        arities.insert(static_cast<int>(o.key_sources.size()));
      }
    }
    for (int n : arities) {
      out << "using Key" << n << " = std::array<int64_t, " << n << ">;\n";
    }
    if (!arities.empty()) {
      out << "struct KeyHash {\n"
          << "  template <size_t N>\n"
          << "  size_t operator()(const std::array<int64_t, N>& k) const {\n"
          << "    size_t h = 1469598103934665603ull;\n"
          << "    for (int64_t v : k) {\n"
          << "      h ^= static_cast<size_t>(v);\n"
          << "      h *= 1099511628211ull;\n"
          << "    }\n"
          << "    return h;\n"
          << "  }\n"
          << "};\n";
    }
    for (const FunctionDict* d : UsedDicts(plan_)) {
      out << "double dict_" << d->name << "(double x);\n";
    }
    out << "\nstruct Input {\n";
    out << "  size_t rel_rows;\n";
    for (int col : used_cols_) {
      const AttrInfo& info = catalog_.attr(rel_.schema().attr(col));
      out << "  const "
          << (info.type == AttrType::kInt ? "int64_t" : "double") << "* rel_"
          << info.name << ";\n";
    }
    for (size_t v = 0; v < plan_.incoming.size(); ++v) {
      const auto& in = plan_.incoming[v];
      out << "  // incoming view V" << in.view << " (width " << in.width
          << (in.IsMultiEntry() ? ", multi-entry" : "") << ")\n";
      out << "  size_t v" << v << "_size;\n";
      const ViewInfo& vinfo = workload_.view(in.view);
      for (int c = 0; c < ViewArity(in); ++c) {
        const int canonical =
            c < static_cast<int>(in.key_perm.size())
                ? in.key_perm[static_cast<size_t>(c)]
                : in.extra_perm[static_cast<size_t>(c) - in.key_perm.size()];
        out << "  const int64_t* v" << v << "_k" << c << ";  // "
            << catalog_.attr(vinfo.key[static_cast<size_t>(canonical)]).name
            << "\n";
      }
      if (in.IsMultiEntry()) {
        out << "  // columnar payload: slot s is v" << v << "_payload[s * v"
            << v << "_size + i] (range sums scan unit-stride)\n";
      } else {
        out << "  // row-major payload: slot s is v" << v << "_payload[i * "
            << in.width << " + s] (single-entry reads share cache lines)\n";
      }
      out << "  const double* v" << v << "_payload;\n";
    }
    out << "};\n\nstruct Output {\n";
    for (size_t o = 0; o < plan_.outputs.size(); ++o) {
      const auto& info = plan_.outputs[o];
      if (info.key_sources.empty()) {
        out << "  std::array<double, " << info.width << "> o" << o
            << "{};  // " << OutputName(static_cast<int>(o)) << "\n";
      } else {
        out << "  std::unordered_map<Key" << info.key_sources.size()
            << ", std::array<double, " << info.width << ">, KeyHash> o" << o
            << ";  // " << OutputName(static_cast<int>(o)) << "\n";
      }
    }
    out << "};\n\n";
    out << kSearchHelpers;
    out << kSumRangeHelper;
    out << "\n";
  }

  std::string OutputName(int o) const {
    const ViewInfo& info =
        workload_.view(plan_.outputs[static_cast<size_t>(o)].view);
    if (info.IsQueryOutput()) return "Q" + std::to_string(info.query_id);
    return "V" + std::to_string(info.id);
  }

  std::string RangeSumVar(const PlanPart& p) const {
    return "rs_v" + std::to_string(p.view_index) + "_s" +
           std::to_string(p.slot) + "_l" + std::to_string(p.level);
  }

  /// Emits accumulation statements for the distinct range-sum parts of
  /// `parts` (idempotent per level via the emitted set).
  void EmitRangeSums(std::ostringstream& out, int depth,
                     const std::vector<PlanPart>& parts,
                     std::set<std::string>* emitted) {
    for (const PlanPart& p : parts) {
      if (p.kind != PlanPart::Kind::kViewRangeSum) continue;
      const std::string var = RangeSumVar(p);
      if (!emitted->insert(var).second) continue;
      // Unit-stride scan of one contiguous payload column (multi-entry
      // views are columnar: entry stride 1 — the runtime host enforces
      // this before dispatching to generated code).
      Indent(out, depth);
      out << "const double " << var << " = sum_range(v" << p.view_index
          << "_payload + " << p.slot << " * v" << p.view_index
          << "_sstride, v" << p.view_index << "_lo" << p.level << ", v"
          << p.view_index << "_hi" << p.level << ");\n";
    }
  }

  /// The C++ expression of one unary factor applied to `arg`. Shared
  /// across modes; parameterized thresholds are only legal in runtime
  /// mode (standalone programs bake constants in, like Function::
  /// CodegenExpr).
  std::string FactorExpr(const Function& fn, const std::string& arg) const {
    switch (fn.kind()) {
      case FunctionKind::kIdentity:
        return arg;
      case FunctionKind::kSquare:
        return "(" + arg + " * " + arg + ")";
      case FunctionKind::kDictionary:
        return DictSymbol(fn.dict().get()) + "(" + arg + ")";
      default: {
        std::string threshold;
        if (fn.IsParameterized()) {
          LMFAO_CHECK(mode_ == Mode::kRuntime)
              << "parameterized function reached standalone codegen; "
                 "Resolve() it first";
          threshold = ParamVar(fn.param());
        } else {
          threshold = StringPrintf("%.17g", fn.threshold());
        }
        return "((" + arg + " " + IndicatorOpStr(fn.kind()) + " " +
               threshold + ") ? 1.0 : 0.0)";
      }
    }
  }

  std::string PartExpr(const PlanPart& p) {
    switch (p.kind) {
      case PlanPart::Kind::kViewPayload: {
        // One slot of the entry the view is bound to at its bind level;
        // the stride aliases make the same expression correct for
        // row-major and columnar layouts.
        const auto& in = plan_.incoming[static_cast<size_t>(p.view_index)];
        const std::string v = std::to_string(p.view_index);
        return "v" + v + "_payload[v" + v + "_lo" +
               std::to_string(in.bound_level) + " * v" + v + "_estride + " +
               std::to_string(p.slot) + " * v" + v + "_sstride]";
      }
      case PlanPart::Kind::kViewRangeSum:
        return RangeSumVar(p);
      case PlanPart::Kind::kFactor: {
        const std::string var =
            "x" + std::to_string(p.level) + "_" +
            catalog_.attr(
                    plan_.attr_order[static_cast<size_t>(p.level) - 1])
                .name;
        return FactorExpr(p.factor.fn, "static_cast<double>(" + var + ")");
      }
    }
    return "1.0";
  }

  std::string SuffixExpr(const GroupPlan::Suffix& s) {
    switch (s.kind) {
      case GroupPlan::SuffixKind::kOne:
        return "1.0";
      case GroupPlan::SuffixKind::kLeaf:
        return "leaf" + std::to_string(s.index);
      case GroupPlan::SuffixKind::kBeta:
        return "beta" + std::to_string(s.index);
    }
    return "1.0";
  }

  void Indent(std::ostringstream& out, int depth) {
    for (int i = 0; i < depth; ++i) out << "  ";
  }

  /// The per-mode prologue: binds every alias the shared body reads.
  void EmitAliases(std::ostringstream& out) {
    if (mode_ == Mode::kStandalone) {
      out << "  const size_t rel_rows = in.rel_rows; (void)rel_rows;\n";
      for (int col : used_cols_) {
        const AttrInfo& info = catalog_.attr(rel_.schema().attr(col));
        out << "  const "
            << (info.type == AttrType::kInt ? "int64_t" : "double")
            << "* rel_" << info.name << " = in.rel_" << info.name
            << "; (void)rel_" << info.name << ";\n";
      }
      for (size_t v = 0; v < plan_.incoming.size(); ++v) {
        const auto& in = plan_.incoming[v];
        out << "  const size_t v" << v << "_size = in.v" << v
            << "_size; (void)v" << v << "_size;\n";
        for (int c = 0; c < ViewArity(in); ++c) {
          out << "  const int64_t* v" << v << "_k" << c << " = in.v" << v
              << "_k" << c << "; (void)v" << v << "_k" << c << ";\n";
        }
        out << "  const double* v" << v << "_payload = in.v" << v
            << "_payload; (void)v" << v << "_payload;\n";
        // Compile-time strides: columnar for multi-entry embedded data,
        // row-major otherwise (mirrors GenerateStandaloneProgram's dump).
        if (in.IsMultiEntry()) {
          out << "  const size_t v" << v << "_estride = 1; (void)v" << v
              << "_estride;\n";
          out << "  const size_t v" << v << "_sstride = v" << v
              << "_size; (void)v" << v << "_sstride;\n";
        } else {
          out << "  const size_t v" << v << "_estride = " << in.width
              << "; (void)v" << v << "_estride;\n";
          out << "  const size_t v" << v << "_sstride = 1; (void)v" << v
              << "_sstride;\n";
        }
      }
      out << "  const int32_t shard = 0; (void)shard;\n";
      out << "  const int32_t num_shards = 1; (void)num_shards;\n";
      for (size_t o = 0; o < plan_.outputs.size(); ++o) {
        const auto& info = plan_.outputs[o];
        if (info.key_sources.empty()) {
          out << "  auto up" << o
              << " = [&](const int64_t*) -> double* { return out.o" << o
              << ".data(); }; (void)up" << o << ";\n";
        } else {
          out << "  auto up" << o
              << " = [&](const int64_t* k) -> double* { return out.o" << o
              << "[Key" << info.key_sources.size() << "{";
          for (size_t i = 0; i < info.key_sources.size(); ++i) {
            if (i > 0) out << ", ";
            out << "k[" << i << "]";
          }
          out << "}].data(); }; (void)up" << o << ";\n";
        }
      }
    } else {
      out << "  const size_t rel_rows = static_cast<size_t>(in->rel_rows); "
             "(void)rel_rows;\n";
      for (size_t i = 0; i < used_cols_.size(); ++i) {
        const AttrInfo& info =
            catalog_.attr(rel_.schema().attr(used_cols_[i]));
        const char* type =
            info.type == AttrType::kInt ? "int64_t" : "double";
        out << "  const " << type << "* rel_" << info.name
            << " = static_cast<const " << type << "*>(in->rel_cols[" << i
            << "]); (void)rel_" << info.name << ";\n";
      }
      for (size_t v = 0; v < plan_.incoming.size(); ++v) {
        const auto& in = plan_.incoming[v];
        out << "  const size_t v" << v << "_size = "
            << "static_cast<size_t>(in->views[" << v << "].size); (void)v"
            << v << "_size;\n";
        for (int c = 0; c < ViewArity(in); ++c) {
          out << "  const int64_t* v" << v << "_k" << c << " = in->views["
              << v << "].keys[" << c << "]; (void)v" << v << "_k" << c
              << ";\n";
        }
        out << "  const double* v" << v << "_payload = in->views[" << v
            << "].payload; (void)v" << v << "_payload;\n";
        out << "  const size_t v" << v << "_estride = "
            << "static_cast<size_t>(in->views[" << v
            << "].entry_stride); (void)v" << v << "_estride;\n";
        out << "  const size_t v" << v << "_sstride = "
            << "static_cast<size_t>(in->views[" << v
            << "].slot_stride); (void)v" << v << "_sstride;\n";
      }
      out << "  const int32_t shard = in->shard; (void)shard;\n";
      out << "  const int32_t num_shards = in->num_shards; "
             "(void)num_shards;\n";
      for (size_t i = 0; i < param_order_.size(); ++i) {
        out << "  const double par" << i << " = in->params[" << i
            << "]; (void)par" << i << ";\n";
      }
      for (size_t o = 0; o < plan_.outputs.size(); ++o) {
        out << "  auto up" << o
            << " = [&](const int64_t* k) -> double* { return "
               "out->upsert(out->ctx, "
            << o << ", k); }; (void)up" << o << ";\n";
      }
    }
  }

  void EmitBody(std::ostringstream& out) {
    if (mode_ == Mode::kStandalone) {
      out << "void lmfao_group_" << plan_.group_id
          << "(const Input& in, Output& out) {\n";
    } else {
      out << "extern \"C\" void " << Symbol()
          << "(const LmfaoJitInput* in, LmfaoJitOutput* out) {\n";
    }
    EmitAliases(out);
    for (size_t a = 0; a < plan_.alphas.size(); ++a) {
      out << "  double alpha" << a << " = 0.0; (void)alpha" << a << ";\n";
    }
    for (size_t b = 0; b < plan_.betas.size(); ++b) {
      out << "  double beta" << b << " = 0.0; (void)beta" << b << ";\n";
    }
    for (size_t l = 0; l < plan_.leaf_sums.size(); ++l) {
      out << "  double leaf" << l << " = 0.0; (void)leaf" << l << ";\n";
    }
    out << "  size_t r_lo0 = 0, r_hi0 = rel_rows;\n";
    out << "  (void)r_lo0; (void)r_hi0;\n";
    for (size_t v = 0; v < plan_.incoming.size(); ++v) {
      out << "  size_t v" << v << "_lo0 = 0, v" << v << "_hi0 = v" << v
          << "_size;\n";
      out << "  (void)v" << v << "_lo0; (void)v" << v << "_hi0;\n";
    }
    const int levels = plan_.num_levels();
    if (levels == 0) {
      // Flat scan: only shard 0 contributes (the interpreter's rule).
      out << "  if (shard != 0) return;\n";
      EmitLeaf(out, 1, 0);
      EmitWrites(out, 1, 0);
    } else {
      for (int b : plan_.betas_at_level[1]) {
        out << "  beta" << b << " = 0.0;\n";
      }
      EmitLevel(out, 1, 1);
      EmitWrites(out, 1, 0);
    }
    out << "}\n";
  }

  void EmitLevel(std::ostringstream& out, int depth, int level) {
    const int col = plan_.level_column[static_cast<size_t>(level - 1)];
    const std::string attr =
        catalog_.attr(plan_.attr_order[static_cast<size_t>(level - 1)]).name;
    std::vector<std::pair<int, int>> vps;  // (view, component)
    for (size_t v = 0; v < plan_.incoming.size(); ++v) {
      const auto& in = plan_.incoming[v];
      for (size_t c = 0; c < in.key_levels.size(); ++c) {
        if (in.key_levels[c] == level) {
          vps.emplace_back(static_cast<int>(v), static_cast<int>(c));
        }
      }
    }
    const std::string p = std::to_string(level - 1);
    const std::string l = std::to_string(level);

    Indent(out, depth);
    out << "// level " << level << ": " << attr << "\n";
    Indent(out, depth);
    out << "{\n";
    ++depth;
    Indent(out, depth);
    out << "size_t r_pos = r_lo" << p << ";\n";
    for (const auto& [v, c] : vps) {
      Indent(out, depth);
      out << "size_t v" << v << "_pos = v" << v << "_lo" << p << ";\n";
    }
    if (level == 1) {
      // Domain sharding: top-level value matches are dealt round-robin
      // (match_index % num_shards == shard), like the interpreter. The
      // standalone prologue pins shard/num_shards to 0/1 so this folds
      // away.
      Indent(out, depth);
      out << "size_t match_index = 0; (void)match_index;\n";
    }
    Indent(out, depth);
    out << "while (true) {\n";
    ++depth;
    Indent(out, depth);
    out << "if (r_pos >= r_hi" << p << ") break;\n";
    for (const auto& [v, c] : vps) {
      Indent(out, depth);
      out << "if (v" << v << "_pos >= v" << v << "_hi" << p << ") break;\n";
    }
    Indent(out, depth);
    out << "int64_t x" << l << "_" << attr << " = " << RelCol(col)
        << "[r_pos];\n";
    Indent(out, depth);
    out << "bool again = true;\n";
    Indent(out, depth);
    out << "while (again) {\n";
    ++depth;
    Indent(out, depth);
    out << "again = false;\n";
    Indent(out, depth);
    out << "r_pos = seek(" << RelCol(col) << ", r_pos, r_hi" << p << ", x"
        << l << "_" << attr << ");\n";
    Indent(out, depth);
    out << "if (r_pos >= r_hi" << p << ") goto done_" << level << ";\n";
    Indent(out, depth);
    out << "if (" << RelCol(col) << "[r_pos] != x" << l << "_" << attr
        << ") { x" << l << "_" << attr << " = " << RelCol(col)
        << "[r_pos]; again = true; }\n";
    for (const auto& [v, c] : vps) {
      const std::string key =
          "v" + std::to_string(v) + "_k" + std::to_string(c);
      Indent(out, depth);
      out << "v" << v << "_pos = seek(" << key << ", v" << v << "_pos, v" << v
          << "_hi" << p << ", x" << l << "_" << attr << ");\n";
      Indent(out, depth);
      out << "if (v" << v << "_pos >= v" << v << "_hi" << p << ") goto done_"
          << level << ";\n";
      Indent(out, depth);
      out << "if (" << key << "[v" << v << "_pos] != x" << l << "_" << attr
          << ") { x" << l << "_" << attr << " = " << key << "[v" << v
          << "_pos]; again = true; }\n";
    }
    --depth;
    Indent(out, depth);
    out << "}\n";
    Indent(out, depth);
    out << "size_t r_lo" << l << " = r_pos;\n";
    Indent(out, depth);
    out << "size_t r_hi" << l << " = run_end(" << RelCol(col) << ", r_pos, "
        << "r_hi" << p << ", x" << l << "_" << attr << ");\n";
    for (size_t v = 0; v < plan_.incoming.size(); ++v) {
      bool participates = false;
      int comp = -1;
      for (const auto& [pv, pc] : vps) {
        if (pv == static_cast<int>(v)) {
          participates = true;
          comp = pc;
        }
      }
      Indent(out, depth);
      if (participates) {
        out << "size_t v" << v << "_lo" << l << " = v" << v << "_pos;\n";
        Indent(out, depth);
        out << "size_t v" << v << "_hi" << l << " = run_end(v" << v << "_k"
            << comp << ", v" << v << "_pos, v" << v << "_hi" << p << ", x"
            << l << "_" << attr << ");\n";
      } else {
        out << "size_t v" << v << "_lo" << l << " = v" << v << "_lo" << p
            << ";\n";
        Indent(out, depth);
        out << "size_t v" << v << "_hi" << l << " = v" << v << "_hi" << p
            << ";\n";
      }
      Indent(out, depth);
      out << "(void)v" << v << "_lo" << l << "; (void)v" << v << "_hi" << l
          << ";\n";
    }
    if (level == 1) {
      Indent(out, depth);
      out << "const bool mine = num_shards <= 1 || (match_index % "
             "static_cast<size_t>(num_shards)) == "
             "static_cast<size_t>(shard);\n";
      Indent(out, depth);
      out << "++match_index;\n";
      Indent(out, depth);
      out << "if (mine) {\n";
      ++depth;
    }
    // Alphas at this level (with any range sums they need).
    std::set<std::string> emitted_sums;
    for (int a : plan_.alphas_at_level[static_cast<size_t>(level)]) {
      const auto& reg = plan_.alphas[static_cast<size_t>(a)];
      EmitRangeSums(out, depth, reg.parts, &emitted_sums);
      Indent(out, depth);
      out << "alpha" << a << " = ";
      bool first = true;
      if (reg.prev >= 0) {
        out << "alpha" << reg.prev;
        first = false;
      }
      for (const PlanPart& part : reg.parts) {
        if (!first) out << " * ";
        first = false;
        out << PartExpr(part);
      }
      if (first) out << "1.0";
      out << ";\n";
    }
    if (level == plan_.num_levels()) {
      for (size_t s = 0; s < plan_.leaf_sums.size(); ++s) {
        Indent(out, depth);
        out << "leaf" << s << " = 0.0;\n";
      }
      EmitLeaf(out, depth, level);
    } else {
      for (int b : plan_.betas_at_level[static_cast<size_t>(level + 1)]) {
        Indent(out, depth);
        out << "beta" << b << " = 0.0;\n";
      }
      EmitLevel(out, depth, level + 1);
    }
    for (int b : plan_.betas_at_level[static_cast<size_t>(level)]) {
      const auto& reg = plan_.betas[static_cast<size_t>(b)];
      EmitRangeSums(out, depth, reg.parts, &emitted_sums);
      Indent(out, depth);
      // Suffix first: the accumulation associates exactly like the
      // interpreter's (suffix, then each part in order).
      out << "beta" << b << " += " << SuffixExpr(reg.next);
      for (const PlanPart& part : reg.parts) {
        out << " * " << PartExpr(part);
      }
      out << ";\n";
    }
    EmitWrites(out, depth, level);
    if (level == 1) {
      --depth;
      Indent(out, depth);
      out << "}\n";
    }
    Indent(out, depth);
    out << "r_pos = r_hi" << l << ";\n";
    for (const auto& [v, c] : vps) {
      Indent(out, depth);
      out << "v" << v << "_pos = v" << v << "_hi" << l << ";\n";
    }
    --depth;
    Indent(out, depth);
    out << "}\n";
    Indent(out, depth);
    out << "done_" << level << ":;\n";
    --depth;
    Indent(out, depth);
    out << "}\n";
  }

  /// Emits the key-array initializer for `output` from bound level values
  /// and (for view-sourced components) the given odometer cursors.
  void EmitKeyArray(std::ostringstream& out, int depth, int output,
                    const char* name) {
    const auto& o = plan_.outputs[static_cast<size_t>(output)];
    Indent(out, depth);
    out << "int64_t " << name << "[" << o.key_sources.size() << "] = {";
    for (size_t i = 0; i < o.key_sources.size(); ++i) {
      if (i > 0) out << ", ";
      const auto& src = o.key_sources[i];
      if (src.from_level) {
        out << "x" << src.level << "_"
            << catalog_
                   .attr(plan_.attr_order[static_cast<size_t>(src.level) - 1])
                   .name;
      } else {
        size_t kv = 0;
        for (; kv < o.key_views.size(); ++kv) {
          if (o.key_views[kv] == src.view_index) break;
        }
        out << "v" << src.view_index << "_k" << src.comp << "[e" << kv
            << "]";
      }
    }
    out << "};\n";
  }

  /// Emits one write: the odometer over key-view entry ranges, the key
  /// expression, and the accumulation through the output's upsert alias.
  void EmitWriteBody(std::ostringstream& out, int depth, int output,
                     int slot, const std::string& value_expr, int level,
                     const std::vector<int>& entry_slots) {
    const auto& o = plan_.outputs[static_cast<size_t>(output)];
    int d = depth;
    // Open one loop per key view.
    for (size_t kv = 0; kv < o.key_views.size(); ++kv) {
      const int v = o.key_views[kv];
      Indent(out, d);
      out << "for (size_t e" << kv << " = v" << v << "_lo" << level << "; e"
          << kv << " < v" << v << "_hi" << level << "; ++e" << kv << ") {\n";
      ++d;
    }
    std::string probe = "up" + std::to_string(output) + "(nullptr)";
    if (!o.key_sources.empty()) {
      EmitKeyArray(out, d, output, "wkey");
      probe = "up" + std::to_string(output) + "(wkey)";
    }
    Indent(out, d);
    out << probe << "[" << slot << "] += " << value_expr;
    for (size_t kv = 0; kv < o.key_views.size(); ++kv) {
      const int v = o.key_views[kv];
      out << " * v" << v << "_payload[e" << kv << " * v" << v
          << "_estride + " << entry_slots[kv] << " * v" << v << "_sstride]";
    }
    out << ";\n";
    for (size_t kv = 0; kv < o.key_views.size(); ++kv) {
      --d;
      Indent(out, d);
      out << "}\n";
    }
  }

  void EmitLeaf(std::ostringstream& out, int depth, int level) {
    const std::string l = std::to_string(level);
    // Range sums used by leaf writes are loop-invariant: emit before rows.
    std::set<std::string> emitted_sums;
    for (const auto& w : plan_.leaf_writes) {
      EmitRangeSums(out, depth, w.parts, &emitted_sums);
    }
    Indent(out, depth);
    out << "for (size_t row = r_lo" << l << "; row < r_hi" << l
        << "; ++row) {\n";
    ++depth;
    for (size_t s = 0; s < plan_.leaf_sums.size(); ++s) {
      Indent(out, depth);
      out << "leaf" << s << " += ";
      const auto& factors = plan_.leaf_sums[s].factors;
      if (factors.empty()) {
        out << "1.0";
      } else {
        for (size_t f = 0; f < factors.size(); ++f) {
          if (f > 0) out << " * ";
          out << FactorExpr(
              factors[f].second,
              "static_cast<double>(" + RelCol(factors[f].first) + "[row])");
        }
      }
      out << ";\n";
    }
    for (const auto& w : plan_.leaf_writes) {
      Indent(out, depth);
      out << "{\n";
      std::string value = "1.0";
      for (const PlanPart& part : w.parts) value += " * " + PartExpr(part);
      for (const auto& [col, fn] : w.leaf_factors) {
        value += " * " + FactorExpr(fn, "static_cast<double>(" +
                                            RelCol(col) + "[row])");
      }
      EmitWriteBody(out, depth + 1, w.output, w.slot, value, level,
                    w.entry_slots);
      Indent(out, depth);
      out << "}\n";
    }
    --depth;
    Indent(out, depth);
    out << "}\n";
  }

  void EmitWrites(std::ostringstream& out, int depth, int level) {
    const auto& writes = plan_.writes_at_level[static_cast<size_t>(level)];
    size_t i = 0;
    while (i < writes.size()) {
      const auto& w = writes[i];
      const auto& o = plan_.outputs[static_cast<size_t>(w.output)];
      auto value_of = [this](const GroupPlan::Write& wr) {
        if (wr.alpha >= 0) {
          return "alpha" + std::to_string(wr.alpha) + " * " +
                 SuffixExpr(wr.suffix);
        }
        return SuffixExpr(wr.suffix);
      };
      if (!o.key_views.empty()) {
        Indent(out, depth);
        out << "// " << OutputName(w.output) << " slot " << w.slot << "\n";
        Indent(out, depth);
        out << "{\n";
        EmitWriteBody(out, depth + 1, w.output, w.slot, value_of(w), level,
                      w.entry_slots);
        Indent(out, depth);
        out << "}\n";
        ++i;
        continue;
      }
      // Consecutive writes to the same key-view-free output share one
      // upsert probe per match (the interpreter's WriteOutputs sharing).
      size_t j = i;
      while (j < writes.size() && writes[j].output == w.output &&
             plan_.outputs[static_cast<size_t>(writes[j].output)]
                 .key_views.empty()) {
        ++j;
      }
      Indent(out, depth);
      out << "{\n";
      const int d = depth + 1;
      std::string probe = "up" + std::to_string(w.output) + "(nullptr)";
      if (!o.key_sources.empty()) {
        EmitKeyArray(out, d, w.output, "wkey");
        probe = "up" + std::to_string(w.output) + "(wkey)";
      }
      Indent(out, d);
      out << "double* p = " << probe << ";\n";
      for (size_t k = i; k < j; ++k) {
        Indent(out, d);
        out << "p[" << writes[k].slot << "] += " << value_of(writes[k])
            << ";  // " << OutputName(writes[k].output) << " slot "
            << writes[k].slot << "\n";
      }
      Indent(out, depth);
      out << "}\n";
      i = j;
    }
  }

  const Mode mode_;
  const GroupPlan& plan_;
  const Workload& workload_;
  const Catalog& catalog_;
  const Relation& rel_;
  const std::map<const FunctionDict*, std::string>* dict_syms_;
  std::vector<int> used_cols_;
  std::vector<ParamId> param_order_;
  std::map<ParamId, int> param_dense_;
};

std::string EmitPreamble() {
  return "#include <array>\n#include <cstddef>\n#include <cstdint>\n"
         "#include <unordered_map>\n\n";
}

}  // namespace

std::string GenerateGroupCode(const GroupPlan& plan, const Workload& workload,
                              const Catalog& catalog) {
  GroupEmitter emitter(GroupEmitter::Mode::kStandalone, plan, workload,
                       catalog);
  return EmitPreamble() + emitter.EmitFunction();
}

StatusOr<RuntimeBatchCode> GenerateRuntimeBatchCode(
    const std::vector<GroupPlan>& plans, const Workload& workload,
    const Catalog& catalog) {
  std::ostringstream out;
  out << "// Generated by LMFAO's runtime Code Generation layer: one\n"
         "// translation unit per compiled batch, one extern \"C\" function\n"
         "// per group, dispatched through the LmfaoJit* ABI (engine/"
         "jit.h).\n";
  out << "#include <cstddef>\n#include <cstdint>\n\n";
  // The ABI mirror: struct text duplicated in jit.h, pinned there by
  // static_asserts on sizes and offsets so the two cannot drift silently.
  out << "struct LmfaoJitView {\n"
         "  uint64_t size;\n"
         "  const int64_t* keys[12];  // TupleKey::kMaxArity\n"
         "  const double* payload;\n"
         "  uint64_t entry_stride;\n"
         "  uint64_t slot_stride;\n"
         "};\n"
         "struct LmfaoJitInput {\n"
         "  uint64_t rel_rows;\n"
         "  const void* const* rel_cols;\n"
         "  const LmfaoJitView* views;\n"
         "  const double* params;\n"
         "  int32_t shard;\n"
         "  int32_t num_shards;\n"
         "};\n"
         "struct LmfaoJitOutput {\n"
         "  void* ctx;\n"
         "  double* (*upsert)(void* ctx, int32_t output, const int64_t* "
         "key);\n"
         "};\n\n";
  out << kSearchHelpers;
  out << kSumRangeHelper;
  out << "\n";
  // Dictionary tables: interned per distinct FunctionDict so groups that
  // share a dictionary share one switch table, and same-named dictionaries
  // from different sources cannot collide.
  std::map<const FunctionDict*, std::string> dict_syms;
  for (const GroupPlan& plan : plans) {
    for (const FunctionDict* d : UsedDicts(plan)) {
      if (dict_syms.count(d) != 0) continue;
      std::string symbol =
          "dict_" + std::to_string(dict_syms.size()) + "_" + d->name;
      EmitDictDefinition(out, symbol, *d, /*internal_linkage=*/true);
      dict_syms.emplace(d, std::move(symbol));
    }
  }
  RuntimeBatchCode code;
  for (const GroupPlan& plan : plans) {
    GroupEmitter emitter(GroupEmitter::Mode::kRuntime, plan, workload,
                         catalog, &dict_syms);
    out << emitter.EmitFunction() << "\n";
    RuntimeGroupMeta meta;
    meta.group_id = plan.group_id;
    meta.symbol = emitter.Symbol();
    meta.used_cols = emitter.used_cols();
    meta.param_order = emitter.param_order();
    code.groups.push_back(std::move(meta));
  }
  code.source = out.str();
  return code;
}

StatusOr<std::string> GenerateStandaloneProgram(
    const GroupPlan& plan, const Workload& workload, const Catalog& catalog,
    const Relation& sorted_relation,
    const std::vector<const ConsumedView*>& views) {
  if (views.size() != plan.incoming.size()) {
    return Status::InvalidArgument("codegen: view count mismatch");
  }
  std::ostringstream out;
  out << "#include <cstdio>\n";
  out << EmitPreamble();

  for (const FunctionDict* d : UsedDicts(plan)) {
    EmitDictDefinition(out, "dict_" + d->name, *d,
                       /*internal_linkage=*/false);
  }

  const std::set<int> cols = UsedColumns(plan);
  for (int col : cols) {
    const AttrInfo& info = catalog.attr(sorted_relation.schema().attr(col));
    const Column& c = sorted_relation.column(col);
    if (info.type == AttrType::kInt) {
      out << "static const int64_t data_rel_" << info.name << "[] = {";
      for (size_t i = 0; i < sorted_relation.num_rows(); ++i) {
        if (i > 0) out << ",";
        out << c.ints()[i] << "ll";
      }
      out << "};\n";
    } else {
      out << "static const double data_rel_" << info.name << "[] = {";
      for (size_t i = 0; i < sorted_relation.num_rows(); ++i) {
        if (i > 0) out << ",";
        out << StringPrintf("%.17g", c.doubles()[i]);
      }
      out << "};\n";
    }
  }
  for (size_t v = 0; v < views.size(); ++v) {
    const ConsumedView* cv = views[v];
    const auto& in = plan.incoming[v];
    const int arity =
        static_cast<int>(in.key_perm.size() + in.extra_perm.size());
    for (int c = 0; c < arity; ++c) {
      out << "static const int64_t data_v" << v << "_k" << c << "[] = {";
      const int64_t* col = cv->col(c);
      for (size_t i = 0; i < cv->size; ++i) {
        if (i > 0) out << ",";
        out << col[i] << "ll";
      }
      if (cv->size == 0) out << "0ll";
      out << "};\n";
    }
    // Payload dump in the layout the emitted code indexes with: slot-major
    // for multi-entry views, entry-major otherwise (converted from the
    // consumed view's own strides if a borrowed frozen view differs).
    out << "static const double data_v" << v << "_payload[] = {";
    const size_t w = static_cast<size_t>(cv->width);
    const size_t payload_count = cv->size * w;
    const bool columnar = in.IsMultiEntry();
    for (size_t i = 0; i < payload_count; ++i) {
      const size_t entry = columnar ? i % cv->size : i / w;
      const int slot = static_cast<int>(columnar ? i / cv->size : i % w);
      if (i > 0) out << ",";
      out << StringPrintf("%.17g", cv->payload_at(entry, slot));
    }
    if (payload_count == 0) out << "0.0";
    out << "};\n";
  }
  out << "\n";

  GroupEmitter emitter(GroupEmitter::Mode::kStandalone, plan, workload,
                       catalog);
  out << emitter.EmitFunction();

  out << "\nint main() {\n";
  out << "  Input in{};\n";
  out << "  in.rel_rows = " << sorted_relation.num_rows() << ";\n";
  for (int col : cols) {
    const AttrInfo& info = catalog.attr(sorted_relation.schema().attr(col));
    out << "  in.rel_" << info.name << " = data_rel_" << info.name << ";\n";
  }
  for (size_t v = 0; v < views.size(); ++v) {
    const auto& in = plan.incoming[v];
    const int arity =
        static_cast<int>(in.key_perm.size() + in.extra_perm.size());
    out << "  in.v" << v << "_size = " << views[v]->size << ";\n";
    for (int c = 0; c < arity; ++c) {
      out << "  in.v" << v << "_k" << c << " = data_v" << v << "_k" << c
          << ";\n";
    }
    out << "  in.v" << v << "_payload = data_v" << v << "_payload;\n";
  }
  out << "  Output out;\n";
  out << "  lmfao_group_" << plan.group_id << "(in, out);\n";
  for (size_t o = 0; o < plan.outputs.size(); ++o) {
    const auto& info = plan.outputs[o];
    if (info.key_sources.empty()) {
      out << "  std::printf(\"output " << o << " entries=1\");\n";
      out << "  for (int s = 0; s < " << info.width
          << "; ++s) std::printf(\" %.17g\", out.o" << o << "[s]);\n";
      out << "  std::printf(\"\\n\");\n";
    } else {
      out << "  {\n";
      out << "    std::array<double, " << info.width << "> total{};\n";
      out << "    for (const auto& kv : out.o" << o << ")\n";
      out << "      for (int s = 0; s < " << info.width
          << "; ++s) total[s] += kv.second[s];\n";
      out << "    std::printf(\"output " << o << " entries=%zu\", out.o" << o
          << ".size());\n";
      out << "    for (int s = 0; s < " << info.width
          << "; ++s) std::printf(\" %.17g\", total[s]);\n";
      out << "  }\n";
      out << "  std::printf(\"\\n\");\n";
    }
  }
  out << "  return 0;\n}\n";
  return out.str();
}

}  // namespace lmfao
