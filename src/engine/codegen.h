/// \file codegen.h
/// \brief The Code Generation layer: lowers group plans to C++ source.
///
/// The generated code is specialized to the schema and join tree exactly as
/// described in Section 2: trie iteration becomes nested loops over sorted
/// columns, view lookups become seeks into sorted key arrays, aggregate
/// functions are inlined, alpha/beta registers become local variables and
/// running sums. The same GroupPlan drives both this generator and the
/// interpreter (executor.h), so the two lowerings agree by construction;
/// GenerateStandaloneProgram additionally embeds a concrete dataset so that
/// the emitted program can be compiled and *run*, validating the generated
/// code end to end against interpreter results.

#ifndef LMFAO_ENGINE_CODEGEN_H_
#define LMFAO_ENGINE_CODEGEN_H_

#include <string>

#include "engine/executor.h"
#include "engine/plan.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace lmfao {

/// \brief Emits the specialized C++ function of one group.
///
/// The output contains an `Input`/`Output` struct pair and a function
/// `lmfao_group_<id>` implementing the multi-output plan. It is
/// self-contained modulo dictionary-function definitions, which are emitted
/// as forward declarations (the standalone program defines them).
std::string GenerateGroupCode(const GroupPlan& plan, const Workload& workload,
                              const Catalog& catalog);

/// \brief Emits a complete runnable program for one group.
///
/// Embeds the (sorted) node relation and consumed incoming views as literal
/// arrays, defines any dictionary functions, calls the group function and
/// prints, for every output, its entry count and per-slot totals with full
/// precision. Compiling and running this program and comparing its output
/// against the interpreter is the codegen integration test.
StatusOr<std::string> GenerateStandaloneProgram(
    const GroupPlan& plan, const Workload& workload, const Catalog& catalog,
    const Relation& sorted_relation,
    const std::vector<const ConsumedView*>& views);

}  // namespace lmfao

#endif  // LMFAO_ENGINE_CODEGEN_H_
