/// \file codegen.h
/// \brief The Code Generation layer: lowers group plans to C++ source.
///
/// The generated code is specialized to the schema and join tree exactly as
/// described in Section 2: trie iteration becomes nested loops over sorted
/// columns, view lookups become seeks into sorted key arrays, aggregate
/// functions are inlined, alpha/beta registers become local variables and
/// running sums. The same GroupPlan drives both this generator and the
/// interpreter (executor.h), so the two lowerings agree by construction;
/// GenerateStandaloneProgram additionally embeds a concrete dataset so that
/// the emitted program can be compiled and *run*, validating the generated
/// code end to end against interpreter results.

#ifndef LMFAO_ENGINE_CODEGEN_H_
#define LMFAO_ENGINE_CODEGEN_H_

#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/plan.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace lmfao {

/// \brief Emits the specialized C++ function of one group.
///
/// The output contains an `Input`/`Output` struct pair and a function
/// `lmfao_group_<id>` implementing the multi-output plan. It is
/// self-contained modulo dictionary-function definitions, which are emitted
/// as forward declarations (the standalone program defines them).
std::string GenerateGroupCode(const GroupPlan& plan, const Workload& workload,
                              const Catalog& catalog);

/// \brief Emits a complete runnable program for one group.
///
/// Embeds the (sorted) node relation and consumed incoming views as literal
/// arrays, defines any dictionary functions, calls the group function and
/// prints, for every output, its entry count and per-slot totals with full
/// precision. Compiling and running this program and comparing its output
/// against the interpreter is the codegen integration test.
StatusOr<std::string> GenerateStandaloneProgram(
    const GroupPlan& plan, const Workload& workload, const Catalog& catalog,
    const Relation& sorted_relation,
    const std::vector<const ConsumedView*>& views);

/// \brief How the runtime host calls one JIT-compiled group function.
///
/// The emitted symbol takes (const LmfaoJitInput*, LmfaoJitOutput*) — see
/// engine/jit.h for the ABI structs. The host marshals exactly the relation
/// columns in `used_cols` (in order) into LmfaoJitInput::rel_cols, and the
/// resolved parameter values in `param_order` (in order) into
/// LmfaoJitInput::params.
struct RuntimeGroupMeta {
  int group_id = -1;
  /// The extern "C" symbol name ("lmfao_jit_group_<id>").
  std::string symbol;
  /// Node-relation column indices the emitted code reads, sorted.
  std::vector<int> used_cols;
  /// Parameter slots referenced by the group's functions, sorted; the
  /// emitted code reads params[i] for param_order[i].
  std::vector<ParamId> param_order;
};

/// \brief One translation unit covering a whole compiled batch.
struct RuntimeBatchCode {
  std::string source;
  std::vector<RuntimeGroupMeta> groups;  ///< Parallel to the input plans.
};

/// \brief Emits the runtime (JIT) translation unit for a batch of plans.
///
/// Same loop-nest/register/write lowering as GenerateGroupCode — the two
/// modes share one emitter core, so the offline validator and the runtime
/// backend cannot drift — but data access goes through the LmfaoJit* ABI
/// (pointer indirection instead of embedded literals), writes go through
/// the host upsert callback, sharding honours the caller's
/// (shard, num_shards), and parameterized function thresholds are read
/// from the params array instead of being baked in.
StatusOr<RuntimeBatchCode> GenerateRuntimeBatchCode(
    const std::vector<GroupPlan>& plans, const Workload& workload,
    const Catalog& catalog);

}  // namespace lmfao

#endif  // LMFAO_ENGINE_CODEGEN_H_
