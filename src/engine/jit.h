/// \file jit.h
/// \brief The runtime JIT backend: compiles a batch's generated C++ into a
/// shared object with the system compiler and resolves per-group function
/// pointers.
///
/// Lifecycle: Engine::Prepare hands the runtime translation unit
/// (codegen.h GenerateRuntimeBatchCode) to JitModule::Compile. In kSync
/// mode the call blocks until the module is ready (or failed); in kAsync
/// mode compilation runs on a background thread — executions started
/// before it finishes use the interpreter/SIMD tier, later ones hot-swap
/// to native code. The module is owned by the CompiledArtifact via
/// shared_ptr, so it outlives every PreparedBatch that dispatches into it
/// and is reused across structural plan-cache hits.
///
/// Failure is always graceful: no compiler on PATH, a sandbox that blocks
/// exec/dlopen, or a compile error simply parks the module in kFailed and
/// execution stays on the interpreter tier. `LMFAO_JIT_CC=/bin/false`
/// exercises exactly this path in tests.

#ifndef LMFAO_ENGINE_JIT_H_
#define LMFAO_ENGINE_JIT_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/codegen.h"
#include "util/hash.h"

namespace lmfao {

/// \name JIT call ABI
/// Plain-C structs crossing the dlopen boundary. The generated translation
/// unit (GenerateRuntimeBatchCode) contains a textual copy of these
/// definitions; the static_asserts below pin the layout so the two copies
/// cannot drift silently on the supported targets (LP64 Linux).
/// @{

/// One consumed incoming view, in the sorted/permuted layout the plan
/// expects (see ConsumedView). Payload indexing is fully general:
/// slot s of entry i lives at payload[i * entry_stride + s * slot_stride],
/// covering both row-major (entry_stride = width, slot_stride = 1) and
/// columnar (entry_stride = 1, slot_stride = size) layouts.
struct LmfaoJitView {
  uint64_t size = 0;
  const int64_t* keys[TupleKey::kMaxArity] = {};
  const double* payload = nullptr;
  uint64_t entry_stride = 0;
  uint64_t slot_stride = 0;
};

/// Everything one group invocation reads. `rel_cols[i]` is the column for
/// RuntimeGroupMeta::used_cols[i] (int64_t* or double* per the schema);
/// `params[i]` is the resolved value for RuntimeGroupMeta::param_order[i].
struct LmfaoJitInput {
  uint64_t rel_rows = 0;
  const void* const* rel_cols = nullptr;
  const LmfaoJitView* views = nullptr;
  const double* params = nullptr;
  int32_t shard = 0;
  int32_t num_shards = 1;
};

/// Where group results go: one host-side upsert callback for all outputs.
/// The callback returns the payload row for `key` in output `output`
/// (key may be null for keyless outputs); the generated code accumulates
/// into the returned slots.
struct LmfaoJitOutput {
  void* ctx = nullptr;
  double* (*upsert)(void* ctx, int32_t output, const int64_t* key) = nullptr;
};

static_assert(TupleKey::kMaxArity == 12,
              "update the emitted LmfaoJitView (codegen.cc) when the key "
              "arity cap changes");
static_assert(sizeof(LmfaoJitView) == 8 + 12 * 8 + 8 + 8 + 8,
              "LmfaoJitView layout drifted from the emitted copy");
static_assert(offsetof(LmfaoJitView, payload) == 8 + 12 * 8, "ABI drift");
static_assert(offsetof(LmfaoJitInput, params) == 24, "ABI drift");
static_assert(offsetof(LmfaoJitInput, num_shards) == 36, "ABI drift");
static_assert(offsetof(LmfaoJitOutput, upsert) == 8, "ABI drift");

/// Signature of each emitted `extern "C" lmfao_jit_group_<id>` function.
using JitGroupFn = void (*)(const LmfaoJitInput*, LmfaoJitOutput*);

/// @}

/// When (and whether) Prepare JIT-compiles a batch.
enum class JitMode {
  kOff,    ///< Never compile; interpreter/SIMD tiers only.
  kAsync,  ///< Compile in the background; hot-swap when ready.
  kSync,   ///< Block Prepare until compiled (benchmarks, tests).
};

struct JitOptions {
  JitMode mode = JitMode::kOff;
  /// Compiler executable; empty = $LMFAO_JIT_CC, else the compiler that
  /// built the engine (CMake bakes it in), else "c++".
  std::string compiler;

  /// Session default from the environment: LMFAO_JIT=on|async → kAsync,
  /// LMFAO_JIT=sync → kSync, anything else (or unset) → kOff.
  static JitOptions FromEnv();
};

/// A compiled (or compiling, or failed) batch module.
class JitModule {
 public:
  enum class State { kCompiling, kReady, kFailed };

  /// Starts compiling `code` under `options`. Never returns null: in
  /// kSync mode the result is already kReady or kFailed, in kAsync mode
  /// it may still be kCompiling (the background thread keeps the module
  /// alive via shared_ptr until it reaches a terminal state).
  static std::shared_ptr<JitModule> Compile(RuntimeBatchCode code,
                                            const JitOptions& options);

  ~JitModule();
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;

  State state() const { return state_.load(std::memory_order_acquire); }
  bool ready() const { return state() == State::kReady; }

  /// Blocks until the module leaves kCompiling.
  void Wait() const;

  /// The native function for a group, or null unless ready().
  JitGroupFn GetFn(int group_id) const;

  /// Marshalling recipe for a group (valid immediately), or null if the
  /// group is not part of this module.
  const RuntimeGroupMeta* GetMeta(int group_id) const;

  /// Wall-clock spent in the compiler+link step (valid once terminal).
  double compile_ms() const { return compile_ms_; }

  /// Compiler/loader diagnostics (valid once terminal; empty on success).
  const std::string& error() const { return error_; }

  /// This process's private scratch directory for emitted TUs and shared
  /// objects: `$TMPDIR/lmfao_jit_p<pid>`. Each compile gets a fresh
  /// mkdtemp'd subdirectory inside it, removed (with the emitted files) on
  /// every exit path of the compile — success, compile failure, and dlopen
  /// failure alike. Exposed so tests can assert nothing is left behind.
  static std::string ScratchDir();

 private:
  JitModule() = default;

  /// Runs the compile → dlopen → dlsym pipeline; sets the terminal state.
  void CompileNow(const std::string& source, const JitOptions& options);

  std::map<int, RuntimeGroupMeta> metas_;
  std::map<int, JitGroupFn> fns_;  ///< Written before state_ → kReady.
  void* handle_ = nullptr;
  double compile_ms_ = 0.0;
  std::string error_;

  std::atomic<State> state_{State::kCompiling};
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
};

}  // namespace lmfao

#endif  // LMFAO_ENGINE_JIT_H_
