#include "engine/parallel.h"

#include <condition_variable>
#include <mutex>

namespace lmfao {

namespace {

/// Shared state of one scheduling run.
struct SchedulerState {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> pending;
  std::vector<std::vector<int>> successors;
  size_t completed = 0;
  size_t total = 0;
  Status first_error = Status::OK();
  bool aborted = false;
};

/// Marks `gid` complete (without running it) and recursively completes any
/// successors that become ready while aborted. Caller holds the lock.
void CompleteSkipped(SchedulerState* state, int gid) {
  ++state->completed;
  for (int s : state->successors[static_cast<size_t>(gid)]) {
    if (--state->pending[static_cast<size_t>(s)] == 0) {
      CompleteSkipped(state, s);
    }
  }
}

}  // namespace

Status ScheduleGroups(const GroupedWorkload& grouped, ThreadPool* pool,
                      const std::function<Status(int)>& run_group) {
  const size_t n = grouped.groups.size();
  if (n == 0) return Status::OK();
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (int g : grouped.TopologicalOrder()) {
      LMFAO_RETURN_NOT_OK(run_group(g));
    }
    return Status::OK();
  }

  SchedulerState state;
  state.total = n;
  state.pending.assign(n, 0);
  state.successors.assign(n, {});
  for (const ViewGroup& g : grouped.groups) {
    state.pending[static_cast<size_t>(g.id)] =
        static_cast<int>(g.depends_on.size());
    for (int dep : g.depends_on) {
      state.successors[static_cast<size_t>(dep)].push_back(g.id);
    }
  }

  std::function<void(int)> submit = [&](int gid) {
    pool->Submit([&, gid] {
      const Status st = run_group(gid);
      std::vector<int> ready;
      {
        std::lock_guard<std::mutex> lock(state.mu);
        ++state.completed;
        if (!st.ok() && state.first_error.ok()) {
          state.first_error = st;
          state.aborted = true;
        }
        for (int s : state.successors[static_cast<size_t>(gid)]) {
          if (--state.pending[static_cast<size_t>(s)] == 0) {
            if (state.aborted) {
              CompleteSkipped(&state, s);
            } else {
              ready.push_back(s);
            }
          }
        }
        state.cv.notify_all();
      }
      for (int s : ready) submit(s);
    });
  };

  for (const ViewGroup& g : grouped.groups) {
    if (g.depends_on.empty()) submit(g.id);
  }
  std::unique_lock<std::mutex> lock(state.mu);
  state.cv.wait(lock, [&] { return state.completed >= state.total; });
  return state.first_error;
}

}  // namespace lmfao
