#include "engine/parallel.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/failpoint.h"

namespace lmfao {

namespace {

using Clock = std::chrono::steady_clock;

/// Shared state of one scheduling run.
struct SchedulerState {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> pending;
  std::vector<std::vector<int>> successors;
  std::vector<Clock::time_point> ready_at;
  size_t completed = 0;
  size_t total = 0;
  Status first_error = Status::OK();
  bool aborted = false;
};

/// Marks `gid` complete (without running it) and recursively completes any
/// successors that become ready while aborted. Caller holds the lock.
void CompleteSkipped(SchedulerState* state, int gid) {
  ++state->completed;
  for (int s : state->successors[static_cast<size_t>(gid)]) {
    if (--state->pending[static_cast<size_t>(s)] == 0) {
      CompleteSkipped(state, s);
    }
  }
}

}  // namespace

int SchedulerOptions::ResolvedThreads() const {
  if (num_threads > 0) return num_threads;
  return static_cast<int>(ThreadPool::DefaultThreadCount());
}

int ChooseShardCount(int64_t rows, const SchedulerOptions& options,
                     int free_threads) {
  const int threads = options.ResolvedThreads();
  if (!options.domain_parallel || threads <= 1) return 1;
  const int64_t floor = std::max<int64_t>(1, options.min_shard_rows);
  if (rows < 2 * floor) return 1;
  const int64_t by_size = rows / floor;
  // The caller's own slot is always available; idle workers add the rest.
  // With task parallelism off the whole pool is idle between groups.
  const int64_t by_slots =
      options.task_parallel ? static_cast<int64_t>(free_threads) + 1
                            : static_cast<int64_t>(threads);
  const int64_t shards =
      std::min({by_size, by_slots, static_cast<int64_t>(threads)});
  return static_cast<int>(std::max<int64_t>(1, shards));
}

Status ScheduleGroupsTimed(
    const GroupedWorkload& grouped, ThreadPool* pool,
    const std::function<Status(int, const GroupStart&)>& run_group) {
  const size_t n = grouped.groups.size();
  if (n == 0) return Status::OK();
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (int g : grouped.TopologicalOrder()) {
      LMFAO_FAILPOINT("scheduler.spawn");
      LMFAO_RETURN_NOT_OK(run_group(g, GroupStart{}));
    }
    return Status::OK();
  }

  SchedulerState state;
  state.total = n;
  state.pending.assign(n, 0);
  state.successors.assign(n, {});
  state.ready_at.assign(n, Clock::now());
  for (const ViewGroup& g : grouped.groups) {
    state.pending[static_cast<size_t>(g.id)] =
        static_cast<int>(g.depends_on.size());
    for (int dep : g.depends_on) {
      state.successors[static_cast<size_t>(dep)].push_back(g.id);
    }
  }

  std::function<void(int)> submit = [&](int gid) {
    pool->Submit([&, gid] {
      GroupStart start;
      {
        std::lock_guard<std::mutex> lock(state.mu);
        start.wait_seconds =
            std::chrono::duration<double>(
                Clock::now() - state.ready_at[static_cast<size_t>(gid)])
                .count();
      }
      // An injected spawn failure takes the place of the group's own
      // status, flowing through the same first_error/abort unwind a real
      // task-creation failure would trigger.
      Status st = Status::OK();
      if (Failpoints::enabled()) st = Failpoints::Check("scheduler.spawn");
      if (st.ok()) st = run_group(gid, start);
      std::vector<int> ready;
      {
        std::lock_guard<std::mutex> lock(state.mu);
        ++state.completed;
        if (!st.ok() && state.first_error.ok()) {
          state.first_error = st;
          state.aborted = true;
        }
        for (int s : state.successors[static_cast<size_t>(gid)]) {
          if (--state.pending[static_cast<size_t>(s)] == 0) {
            if (state.aborted) {
              CompleteSkipped(&state, s);
            } else {
              state.ready_at[static_cast<size_t>(s)] = Clock::now();
              ready.push_back(s);
            }
          }
        }
        state.cv.notify_all();
      }
      for (int s : ready) submit(s);
    });
  };

  for (const ViewGroup& g : grouped.groups) {
    if (g.depends_on.empty()) submit(g.id);
  }
  std::unique_lock<std::mutex> lock(state.mu);
  state.cv.wait(lock, [&] { return state.completed >= state.total; });
  return state.first_error;
}

Status ScheduleGroups(const GroupedWorkload& grouped, ThreadPool* pool,
                      const std::function<Status(int)>& run_group) {
  return ScheduleGroupsTimed(
      grouped, pool,
      [&run_group](int gid, const GroupStart&) { return run_group(gid); });
}

}  // namespace lmfao
