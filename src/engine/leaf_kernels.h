/// \file leaf_kernels.h
/// \brief Kind-specialized batched kernels for leaf factor evaluation.
///
/// The executor's leaf loop evaluates products of unary functions over
/// relation columns. Dispatching `Function::Eval`'s switch (and the
/// int-vs-double column branch) per factor per row keeps the loop scalar;
/// instead, each distinct (column, function) factor is resolved ONCE at
/// bind time to a typed kernel pointer that fills a whole scratch column
/// for a row range: `dst[i - lo] = f(column[i])` with no switch and no
/// type branch inside the loop. Leaf sums and leaf writes then reduce to
/// unit-stride products over scratch columns.

#ifndef LMFAO_ENGINE_LEAF_KERNELS_H_
#define LMFAO_ENGINE_LEAF_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "query/function.h"

namespace lmfao {

/// \brief A leaf factor resolved to its source column and a batched,
/// kind-specialized fill kernel.
///
/// Exactly one of `icol` / `dcol` is set (the factor's relation column in
/// its native type); `threshold` / `dict` carry the function's parameters
/// so the kernel loop reads plain members instead of chasing the Function
/// object. The pointees must outlive the kernel (the relation and the
/// workload's dictionaries do).
struct LeafKernel {
  using FillFn = void (*)(const LeafKernel&, size_t lo, size_t hi,
                          double* dst);

  const int64_t* icol = nullptr;
  const double* dcol = nullptr;
  double threshold = 0.0;
  const FunctionDict* dict = nullptr;
  /// Writes f(column[lo + i]) to dst[i] for i in [0, hi - lo).
  FillFn fill = nullptr;
};

/// \brief Resolves a (column, function) leaf factor to its batched kernel.
///
/// Exactly one of `icol` / `dcol` must be non-null; `fn` selects the
/// specialized fill loop (identity / square / indicator comparisons /
/// dictionary) for that column type. Evaluation semantics match
/// `Function::Eval` on the promoted double value bit-for-bit. A
/// parameterized indicator resolves its threshold slot against `params`
/// here — once per bind — so the fill loop is identical to the literal
/// case.
LeafKernel MakeLeafKernel(const int64_t* icol, const double* dcol,
                          const Function& fn,
                          const ParamPack* params = nullptr);

}  // namespace lmfao

#endif  // LMFAO_ENGINE_LEAF_KERNELS_H_
