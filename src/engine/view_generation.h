/// \file view_generation.h
/// \brief The View Generation layer: Find Roots, Aggregate Pushdown, Merge
/// Views (Fig. 1 of the paper).
///
/// Given a query batch, the join tree and the catalog's cardinality
/// constraints, produces the Workload: one root per query, one directional
/// view per traversed join-tree edge, merged across queries whenever
/// direction and group-by attributes coincide.

#ifndef LMFAO_ENGINE_VIEW_GENERATION_H_
#define LMFAO_ENGINE_VIEW_GENERATION_H_

#include <vector>

#include "engine/ir.h"
#include "jointree/join_tree.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace lmfao {

/// \brief Options of the View Generation layer.
struct ViewGenerationOptions {
  /// Merge views with equal direction and group-by across queries and
  /// deduplicate aggregates structurally. Disabling this reproduces the
  /// "no sharing" ablation: every query gets fresh views.
  bool merge_views = true;
};

/// \brief Chooses the root node for one query ("a simple heuristic" [5]).
///
/// Prefers the node covering the query's group-by attributes with the
/// largest product of covered domain sizes (so large-domain group-by
/// attributes do not travel through views); ties are broken towards larger
/// relations, then smaller node ids. Queries with a root_hint keep it.
RelationId AssignRoot(const Query& query, const Catalog& catalog,
                      const JoinTree& tree);

/// \brief Runs the full View Generation layer over a batch.
StatusOr<Workload> GenerateViews(const QueryBatch& batch,
                                 const Catalog& catalog, const JoinTree& tree,
                                 const ViewGenerationOptions& options = {});

}  // namespace lmfao

#endif  // LMFAO_ENGINE_VIEW_GENERATION_H_
