#include "engine/jit.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <utility>

#include "util/failpoint.h"

namespace lmfao {
namespace {

std::string ShellQuote(const std::string& s) {
  std::string quoted = "'";
  for (char c : s) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted += c;
    }
  }
  quoted += "'";
  return quoted;
}

/// Runs `cmd` under the shell, capturing stdout+stderr into `output`.
/// Returns the shell's exit status (non-zero = failure).
int RunCommand(const std::string& cmd, std::string* output) {
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    *output = "popen() failed";
    return -1;
  }
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) output->append(buf, n);
  return pclose(pipe);
}

std::string DefaultCompiler() {
#ifdef LMFAO_HOST_CXX
  return LMFAO_HOST_CXX;
#else
  return "c++";
#endif
}

}  // namespace

std::string JitModule::ScratchDir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string base(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp");
  // One directory per process: concurrent processes sharing TMPDIR never
  // collide, and leftovers are attributable to a pid (a crashed run leaves
  // at most its own directory behind).
  return base + "/lmfao_jit_p" + std::to_string(getpid());
}

JitOptions JitOptions::FromEnv() {
  JitOptions o;
  if (const char* mode = std::getenv("LMFAO_JIT")) {
    const std::string m(mode);
    if (m == "on" || m == "async") {
      o.mode = JitMode::kAsync;
    } else if (m == "sync") {
      o.mode = JitMode::kSync;
    }
  }
  if (const char* cc = std::getenv("LMFAO_JIT_CC")) o.compiler = cc;
  return o;
}

std::shared_ptr<JitModule> JitModule::Compile(RuntimeBatchCode code,
                                              const JitOptions& options) {
  std::shared_ptr<JitModule> m(new JitModule());
  for (auto& meta : code.groups) {
    const int gid = meta.group_id;
    m->metas_.emplace(gid, std::move(meta));
  }
  if (options.mode == JitMode::kAsync) {
    // The thread keeps the module alive until it reaches a terminal state;
    // the destructor therefore never races the compile.
    std::thread([m, source = std::move(code.source), options] {
      m->CompileNow(source, options);
    }).detach();
  } else {
    m->CompileNow(code.source, options);
  }
  return m;
}

JitModule::~JitModule() {
  if (handle_ != nullptr) dlclose(handle_);
}

void JitModule::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return state_.load(std::memory_order_acquire) != State::kCompiling;
  });
}

JitGroupFn JitModule::GetFn(int group_id) const {
  // The acquire load in ready() pairs with the release transition in
  // CompileNow: fns_ is fully populated before kReady becomes visible.
  if (!ready()) return nullptr;
  const auto it = fns_.find(group_id);
  return it == fns_.end() ? nullptr : it->second;
}

const RuntimeGroupMeta* JitModule::GetMeta(int group_id) const {
  const auto it = metas_.find(group_id);
  return it == metas_.end() ? nullptr : &it->second;
}

void JitModule::CompileNow(const std::string& source,
                           const JitOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  auto finish = [&](State s) {
    compile_ms_ = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    {
      std::lock_guard<std::mutex> lock(mu_);
      state_.store(s, std::memory_order_release);
    }
    cv_.notify_all();
  };

  const std::string scratch = ScratchDir();
  if (mkdir(scratch.c_str(), 0700) != 0 && errno != EEXIST) {
    error_ = "jit: cannot create scratch dir " + scratch;
    finish(State::kFailed);
    return;
  }
  std::string tmpl = scratch + "/mXXXXXX";
  std::vector<char> dir_buf(tmpl.begin(), tmpl.end());
  dir_buf.push_back('\0');
  if (mkdtemp(dir_buf.data()) == nullptr) {
    error_ = "jit: mkdtemp failed for " + tmpl;
    finish(State::kFailed);
    return;
  }
  const std::string dir = dir_buf.data();
  const std::string src_path = dir + "/batch.cc";
  const std::string so_path = dir + "/batch.so";
  auto cleanup = [&] {
    std::remove(src_path.c_str());
    std::remove(so_path.c_str());
    rmdir(dir.c_str());
    // Best effort: succeeds only once no other module of this process has
    // an in-flight compile, which is exactly when it should.
    rmdir(scratch.c_str());
  };

  if (Failpoints::enabled()) {
    Status fp = Failpoints::Check("jit.compile");
    if (!fp.ok()) {
      error_ = "jit: " + fp.ToString();
      cleanup();
      finish(State::kFailed);
      return;
    }
  }
  {
    std::ofstream f(src_path);
    f << source;
    f.flush();
    if (!f.good()) {
      error_ = "jit: cannot write " + src_path;
      cleanup();
      finish(State::kFailed);
      return;
    }
  }

  const std::string cc =
      options.compiler.empty() ? DefaultCompiler() : options.compiler;
  const std::string base = ShellQuote(cc) +
                           " -std=c++17 -O2 -ffp-contract=off -fPIC -shared"
                           " -fno-exceptions -fno-rtti ";
  const std::string tail =
      ShellQuote(src_path) + " -o " + ShellQuote(so_path);
  std::string log;
  int rc = RunCommand(base + "-march=native " + tail, &log);
  if (rc != 0) {
    // Some toolchains/targets reject -march=native; the flag is only an
    // optimization, so retry without it before giving up.
    log.clear();
    rc = RunCommand(base + tail, &log);
  }
  if (rc != 0) {
    if (log.size() > 2000) log.resize(2000);
    error_ = "jit: compile failed (" + cc + "): " + log;
    cleanup();
    finish(State::kFailed);
    return;
  }

  if (Failpoints::enabled()) {
    Status fp = Failpoints::Check("jit.dlopen");
    if (!fp.ok()) {
      error_ = "jit: " + fp.ToString();
      cleanup();
      finish(State::kFailed);
      return;
    }
  }
  handle_ = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  // The mapping survives unlink on Linux; drop the files either way.
  cleanup();
  if (handle_ == nullptr) {
    const char* err = dlerror();
    error_ = std::string("jit: dlopen failed: ") + (err != nullptr ? err : "");
    finish(State::kFailed);
    return;
  }
  for (const auto& [gid, meta] : metas_) {
    void* sym = dlsym(handle_, meta.symbol.c_str());
    if (sym == nullptr) {
      error_ = "jit: missing symbol " + meta.symbol;
      fns_.clear();
      finish(State::kFailed);
      return;
    }
    fns_[gid] = reinterpret_cast<JitGroupFn>(sym);
  }
  finish(State::kReady);
}

}  // namespace lmfao
