/// \file grouping.h
/// \brief The Group Views step of the Multi-Output Optimization layer.
///
/// Outputs (inner views and query outputs) computed at the same join-tree
/// node are grouped so that one pass over the node's relation, with lookups
/// into the incoming views, computes all of them. Grouping must keep the
/// group dependency graph acyclic: a query rooted at node n may depend
/// (transitively, through other nodes) on a view produced at n, in which
/// case the two cannot share a group — this is exactly why Fig. 2 of the
/// paper keeps Q3 (Group 7) apart from V_{I->S} (Group 5).

#ifndef LMFAO_ENGINE_GROUPING_H_
#define LMFAO_ENGINE_GROUPING_H_

#include "engine/ir.h"
#include "util/status.h"

namespace lmfao {

/// \brief Options of the grouping step.
struct GroupingOptions {
  /// When false, every output view forms its own group (the "no
  /// multi-output" ablation: each view is computed by its own scan).
  bool multi_output = true;
};

/// \brief Partitions the workload's views into groups and computes the group
/// dependency graph.
///
/// Merging is greedy and ordered by decreasing node-relation size: sharing a
/// scan of a large relation saves more than sharing a small one, and an
/// early merge can block a later one through the acyclicity constraint (in
/// Fig. 2, merging at Sales first is what keeps Q3 and V_{I->S} apart).
StatusOr<GroupedWorkload> GroupViews(const Workload& workload,
                                     const Catalog& catalog,
                                     const GroupingOptions& options = {});

}  // namespace lmfao

#endif  // LMFAO_ENGINE_GROUPING_H_
