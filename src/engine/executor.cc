#include "engine/executor.h"

#include <algorithm>
#include <cstring>

namespace lmfao {

namespace {

/// Shared tail of the consumed-view build: argsorts u32 entry indices with
/// a comparator reading the *source* key components in consumed order (no
/// permuted key objects are ever materialized), then gathers each consumed
/// component into its own contiguous column and the payloads into one
/// contiguous array. `component(entry, canonical_comp)` and
/// `payload(entry)` read the source container.
template <typename ComponentFn, typename PayloadFn>
ConsumedView ArgsortAndGather(int width, std::vector<uint32_t> entries,
                              const GroupPlan::IncomingView& incoming,
                              ComponentFn&& component, PayloadFn&& payload) {
  ConsumedView out;
  out.width = width;
  // The plan layer precomputes consumed_perm; fall back to concatenating
  // the permutations for hand-built IncomingViews (tests, tooling).
  std::vector<int> perm = incoming.consumed_perm;
  if (perm.empty()) {
    perm = incoming.key_perm;
    perm.insert(perm.end(), incoming.extra_perm.begin(),
                incoming.extra_perm.end());
  }
  out.arity = static_cast<int>(perm.size());
  std::sort(entries.begin(), entries.end(),
            [&component, &perm](uint32_t a, uint32_t b) {
              for (int pos : perm) {
                const int64_t va = component(a, pos);
                const int64_t vb = component(b, pos);
                if (va != vb) return va < vb;
              }
              return false;
            });
  const size_t n = entries.size();
  out.owned_keys = KeyColumns(out.arity, n);
  for (int c = 0; c < out.arity; ++c) {
    int64_t* dst = out.owned_keys.col(c);
    const int pos = perm[static_cast<size_t>(c)];
    for (size_t i = 0; i < n; ++i) dst[i] = component(entries[i], pos);
    out.cols[static_cast<size_t>(c)] = dst;
  }
  out.owned_payloads.resize(n * static_cast<size_t>(width));
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(out.owned_payloads.data() + i * static_cast<size_t>(width),
                payload(entries[i]),
                sizeof(double) * static_cast<size_t>(width));
  }
  out.size = n;
  out.payloads = out.owned_payloads.data();
  return out;
}

}  // namespace

ConsumedView ConsumedView::Borrow(const SortView& frozen) {
  ConsumedView out;
  out.arity = frozen.key_arity();
  out.width = frozen.width();
  out.size = frozen.size();
  for (int c = 0; c < out.arity; ++c) {
    out.cols[static_cast<size_t>(c)] = frozen.col(c);
  }
  out.payloads = frozen.payloads().data();
  return out;
}

ConsumedView BuildConsumedView(const ViewMap& produced,
                               const GroupPlan::IncomingView& incoming) {
  std::vector<uint32_t> entries;
  entries.reserve(produced.size());
  const size_t slots = produced.num_slots();
  LMFAO_CHECK_LT(slots, static_cast<size_t>(UINT32_MAX));
  for (size_t s = 0; s < slots; ++s) {
    if (produced.slot_occupied(s)) entries.push_back(static_cast<uint32_t>(s));
  }
  return ArgsortAndGather(
      produced.width(), std::move(entries), incoming,
      [&produced](uint32_t slot, int comp) {
        return produced.slot_key(slot)[comp];
      },
      [&produced](uint32_t slot) { return produced.slot_payload(slot); });
}

ConsumedView BuildConsumedView(const SortView& produced,
                               const GroupPlan::IncomingView& incoming) {
  LMFAO_CHECK_LT(produced.size(), static_cast<size_t>(UINT32_MAX));
  std::vector<uint32_t> entries(produced.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i] = static_cast<uint32_t>(i);
  }
  return ArgsortAndGather(
      produced.width(), std::move(entries), incoming,
      [&produced](uint32_t row, int comp) { return produced.col(comp)[row]; },
      [&produced](uint32_t row) { return produced.payload(row); });
}

GroupExecutor::GroupExecutor(const GroupPlan& plan,
                             const Relation& sorted_relation,
                             std::vector<const ConsumedView*> views)
    : plan_(plan), relation_(sorted_relation), views_(std::move(views)) {
  const int levels = plan_.num_levels();
  level_rel_column_.assign(static_cast<size_t>(levels) + 1, nullptr);
  level_views_.assign(static_cast<size_t>(levels) + 1, {});
  for (int level = 1; level <= levels; ++level) {
    const int col = plan_.level_column[static_cast<size_t>(level - 1)];
    level_rel_column_[static_cast<size_t>(level)] =
        relation_.column(col).ints().data();
  }
  level_bound_views_.assign(static_cast<size_t>(levels) + 1, {});
  level_stride_ = static_cast<size_t>(levels) + 1;
  effective_level_.assign(plan_.incoming.size() * level_stride_, 0);
  for (size_t v = 0; v < plan_.incoming.size(); ++v) {
    const auto& in = plan_.incoming[v];
    for (size_t c = 0; c < in.key_levels.size(); ++c) {
      level_views_[static_cast<size_t>(in.key_levels[c])].emplace_back(
          static_cast<int>(v), static_cast<int>(c));
    }
    if (!in.IsMultiEntry() && in.bound_level >= 1) {
      level_bound_views_[static_cast<size_t>(in.bound_level)].push_back(
          static_cast<int>(v));
    }
    int* eff = effective_level_.data() + v * level_stride_;
    for (int l = 1; l <= levels; ++l) {
      const bool participates =
          std::find(in.key_levels.begin(), in.key_levels.end(), l) !=
          in.key_levels.end();
      eff[l] = participates ? l : eff[l - 1];
    }
  }
  auto resolve = [this](const std::vector<std::pair<int, Function>>& factors) {
    std::vector<ResolvedFactor> out;
    for (const auto& [col, fn] : factors) {
      ResolvedFactor rf;
      rf.fn = fn;
      if (relation_.column(col).type() == AttrType::kInt) {
        rf.icol = relation_.column(col).ints().data();
      } else {
        rf.dcol = relation_.column(col).doubles().data();
      }
      out.push_back(rf);
    }
    return out;
  };
  for (const auto& sum : plan_.leaf_sums) {
    leaf_factors_.push_back(resolve(sum.factors));
  }
  for (const auto& w : plan_.leaf_writes) {
    leaf_write_factors_.push_back(resolve(w.leaf_factors));
  }
}

Status GroupExecutor::Validate() const {
  if (views_.size() != plan_.incoming.size()) {
    return Status::InvalidArgument("executor: view count mismatch");
  }
  for (size_t v = 0; v < views_.size(); ++v) {
    if (views_[v]->width != plan_.incoming[v].width) {
      return Status::InvalidArgument("executor: view width mismatch");
    }
  }
  return Status::OK();
}

void GroupExecutor::Prepare(const std::vector<ViewMap*>& outputs) {
  const int levels = plan_.num_levels();
  rel_range_.assign(static_cast<size_t>(levels) + 1, Range{});
  rel_range_[0] = Range{0, relation_.num_rows()};
  view_range_.assign(views_.size() * level_stride_, Range{});
  for (size_t v = 0; v < views_.size(); ++v) {
    view_range_[v * level_stride_] = Range{0, views_[v]->size};
  }
  bound_.assign(static_cast<size_t>(levels) + 1, 0);
  view_payload_cache_.assign(views_.size(), nullptr);
  alpha_vals_.assign(plan_.alphas.size(), 0.0);
  beta_vals_.assign(plan_.betas.size(), 0.0);
  leaf_vals_.assign(plan_.leaf_sums.size(), 0.0);
  outputs_ = outputs;
}

Status GroupExecutor::Execute(const std::vector<ViewMap*>& outputs) {
  return ExecuteShard(outputs, 0, 1);
}

Status GroupExecutor::ExecuteShard(const std::vector<ViewMap*>& outputs,
                                   int shard, int num_shards) {
  LMFAO_RETURN_NOT_OK(Validate());
  if (outputs.size() != plan_.outputs.size()) {
    return Status::InvalidArgument("executor: output count mismatch");
  }
  // The write paths hand raw key_sources-sized spans to UpsertHashed (which
  // cannot check a span length), so pin the arity invariant once up front.
  for (size_t o = 0; o < outputs.size(); ++o) {
    if (outputs[o]->key_arity() !=
        static_cast<int>(plan_.outputs[o].key_sources.size())) {
      return Status::InvalidArgument("executor: output key arity mismatch");
    }
  }
  Prepare(outputs);
  const int levels = plan_.num_levels();
  if (levels == 0) {
    // Single flat scan; only shard 0 contributes.
    if (shard == 0) {
      for (double& v : leaf_vals_) v = 0.0;
      LeafLoop(rel_range_[0]);
      WriteOutputs(0);
    }
    return Status::OK();
  }
  for (int b : plan_.betas_at_level[1]) {
    beta_vals_[static_cast<size_t>(b)] = 0.0;
  }
  IterateLevel(1, shard, num_shards);
  // Write outputs with empty write level; their beta values are
  // shard-partial sums, so every shard emits and the caller merges.
  WriteOutputs(0);
  return Status::OK();
}

void GroupExecutor::IterateLevel(int level, int shard, int num_shards) {
  const int64_t* rel_col = level_rel_column_[static_cast<size_t>(level)];
  const Range rel = rel_range_[static_cast<size_t>(level - 1)];
  const auto& vps = level_views_[static_cast<size_t>(level)];

  size_t rel_pos = rel.lo;
  // Small inline cursor buffers: IterateLevel is called once per parent
  // value, so heap allocation here would dominate small subtries. vcols
  // caches each participant's contiguous key column — every seek below is
  // a galloping search over a plain int64 array.
  size_t vpos[kMaxLevelViews];
  size_t vhis[kMaxLevelViews];
  const int64_t* vcols[kMaxLevelViews];
  LMFAO_CHECK_LE(vps.size(), kMaxLevelViews);
  for (size_t i = 0; i < vps.size(); ++i) {
    const Range parent = ViewRangeAt(vps[i].first, level - 1);
    vpos[i] = parent.lo;
    vhis[i] = parent.hi;
    vcols[i] = views_[static_cast<size_t>(vps[i].first)]->col(vps[i].second);
  }
  auto view_hi = [&](size_t i) { return vhis[i]; };
  auto view_val = [&](size_t i) { return vcols[i][vpos[i]]; };

  if (rel.empty()) return;
  for (size_t i = 0; i < vps.size(); ++i) {
    if (vpos[i] >= view_hi(i)) return;
  }

  size_t match_index = 0;
  for (;;) {
    int64_t target = rel_col[rel_pos];
    bool exhausted = false;
    for (;;) {
      bool all_equal = true;
      if (rel_col[rel_pos] < target) {
        rel_pos = GallopLowerBound(rel_col, rel_pos, rel.hi, target);
        if (rel_pos >= rel.hi) {
          exhausted = true;
          break;
        }
      }
      if (rel_col[rel_pos] > target) {
        target = rel_col[rel_pos];
        all_equal = false;
      }
      for (size_t i = 0; i < vps.size(); ++i) {
        if (view_val(i) < target) {
          vpos[i] = GallopLowerBound(vcols[i], vpos[i], view_hi(i), target);
          if (vpos[i] >= view_hi(i)) {
            exhausted = true;
            break;
          }
        }
        if (view_val(i) > target) {
          target = view_val(i);
          all_equal = false;
        }
      }
      if (exhausted) break;
      if (all_equal && rel_col[rel_pos] == target) break;
    }
    if (exhausted) return;

    // Equal runs for each participant.
    const size_t rel_run_end =
        GallopUpperBound(rel_col, rel_pos, rel.hi, target);
    rel_range_[static_cast<size_t>(level)] = Range{rel_pos, rel_run_end};
    for (size_t i = 0; i < vps.size(); ++i) {
      const size_t run_end =
          GallopUpperBound(vcols[i], vpos[i], view_hi(i), target);
      view_range_[static_cast<size_t>(vps[i].first) * level_stride_ +
                  static_cast<size_t>(level)] = Range{vpos[i], run_end};
    }

    const bool mine =
        level > 1 || num_shards <= 1 ||
        (match_index % static_cast<size_t>(num_shards)) ==
            static_cast<size_t>(shard);
    if (mine) {
      ProcessMatch(level, target, shard, num_shards);
    }
    ++match_index;

    rel_pos = rel_range_[static_cast<size_t>(level)].hi;
    if (rel_pos >= rel.hi) return;
    for (size_t i = 0; i < vps.size(); ++i) {
      vpos[i] = view_range_[static_cast<size_t>(vps[i].first) *
                                level_stride_ +
                            static_cast<size_t>(level)]
                    .hi;
      if (vpos[i] >= view_hi(i)) return;
    }
  }
}

void GroupExecutor::ProcessMatch(int level, int64_t value, int shard,
                                 int num_shards) {
  bound_[static_cast<size_t>(level)] = value;
  for (int v : level_bound_views_[static_cast<size_t>(level)]) {
    const Range& r = view_range_[static_cast<size_t>(v) * level_stride_ +
                                 static_cast<size_t>(level)];
    view_payload_cache_[static_cast<size_t>(v)] =
        views_[static_cast<size_t>(v)]->payload(r.lo);
  }
  EvalAlphas(level);
  const int levels = plan_.num_levels();
  if (level == levels) {
    for (double& v : leaf_vals_) v = 0.0;
    LeafLoop(rel_range_[static_cast<size_t>(level)]);
  } else {
    for (int b : plan_.betas_at_level[static_cast<size_t>(level + 1)]) {
      beta_vals_[static_cast<size_t>(b)] = 0.0;
    }
    IterateLevel(level + 1, shard, num_shards);
  }
  AccumulateBetas(level);
  WriteOutputs(level);
}

void GroupExecutor::LeafLoop(const Range& range) {
  for (size_t row = range.lo; row < range.hi; ++row) {
    for (size_t s = 0; s < leaf_factors_.size(); ++s) {
      double prod = 1.0;
      for (const ResolvedFactor& rf : leaf_factors_[s]) {
        const double x = rf.icol != nullptr
                             ? static_cast<double>(rf.icol[row])
                             : rf.dcol[row];
        prod *= rf.fn.Eval(x);
      }
      leaf_vals_[s] += prod;
    }
    for (size_t w = 0; w < plan_.leaf_writes.size(); ++w) {
      EmitLeafWrite(w, row);
    }
  }
}

GroupExecutor::Range GroupExecutor::ViewRangeAt(int view_index,
                                                int level) const {
  const size_t row = static_cast<size_t>(view_index) * level_stride_;
  const int effective = effective_level_[row + static_cast<size_t>(level)];
  return view_range_[row + static_cast<size_t>(effective)];
}

double GroupExecutor::EvalPart(const PlanPart& part) const {
  switch (part.kind) {
    case PlanPart::Kind::kFactor:
      return part.factor.fn.Eval(
          static_cast<double>(bound_[static_cast<size_t>(part.level)]));
    case PlanPart::Kind::kViewPayload:
      return view_payload_cache_[static_cast<size_t>(part.view_index)]
                                [part.slot];
    case PlanPart::Kind::kViewRangeSum: {
      const Range r = ViewRangeAt(part.view_index, part.level);
      const ConsumedView* v = views_[static_cast<size_t>(part.view_index)];
      double sum = 0.0;
      for (size_t i = r.lo; i < r.hi; ++i) sum += v->payload(i)[part.slot];
      return sum;
    }
  }
  return 1.0;
}

double GroupExecutor::SuffixValue(const GroupPlan::Suffix& suffix) const {
  switch (suffix.kind) {
    case GroupPlan::SuffixKind::kOne:
      return 1.0;
    case GroupPlan::SuffixKind::kLeaf:
      return leaf_vals_[static_cast<size_t>(suffix.index)];
    case GroupPlan::SuffixKind::kBeta:
      return beta_vals_[static_cast<size_t>(suffix.index)];
  }
  return 1.0;
}

void GroupExecutor::EvalAlphas(int level) {
  for (int a : plan_.alphas_at_level[static_cast<size_t>(level)]) {
    const GroupPlan::AlphaReg& reg = plan_.alphas[static_cast<size_t>(a)];
    double v =
        reg.prev >= 0 ? alpha_vals_[static_cast<size_t>(reg.prev)] : 1.0;
    for (const PlanPart& p : reg.parts) v *= EvalPart(p);
    alpha_vals_[static_cast<size_t>(a)] = v;
  }
}

void GroupExecutor::AccumulateBetas(int level) {
  for (int b : plan_.betas_at_level[static_cast<size_t>(level)]) {
    const GroupPlan::BetaReg& reg = plan_.betas[static_cast<size_t>(b)];
    double v = SuffixValue(reg.next);
    for (const PlanPart& p : reg.parts) v *= EvalPart(p);
    beta_vals_[static_cast<size_t>(b)] += v;
  }
}

void GroupExecutor::EmitWrite(const GroupPlan::Write& w, int level) {
  const GroupPlan::OutputInfo& o =
      plan_.outputs[static_cast<size_t>(w.output)];
  double base = w.alpha >= 0 ? alpha_vals_[static_cast<size_t>(w.alpha)] : 1.0;
  base *= SuffixValue(w.suffix);

  // Raw packed key buffer: only the output's actual arity is touched, and
  // UpsertHashed skips the inline-tuple handle entirely.
  const int key_n = static_cast<int>(o.key_sources.size());
  int64_t key[TupleKey::kMaxArity];
  // Fill level-sourced components once.
  for (int i = 0; i < key_n; ++i) {
    const GroupPlan::KeySource& src = o.key_sources[static_cast<size_t>(i)];
    if (src.from_level) {
      key[i] = bound_[static_cast<size_t>(src.level)];
    }
  }
  if (o.key_views.empty()) {
    outputs_[static_cast<size_t>(w.output)]
        ->UpsertHashed(key, HashKeySpan(key, key_n))[w.slot] += base;
    return;
  }
  // Iterate the cross product of the key views' entry ranges.
  const size_t nv = o.key_views.size();
  if (entry_cursor_.size() < nv) {
    entry_cursor_.resize(nv);
    write_ranges_.resize(nv);
  }
  for (size_t i = 0; i < nv; ++i) {
    write_ranges_[i] = ViewRangeAt(o.key_views[i], level);
    if (write_ranges_[i].empty()) return;
    entry_cursor_[i] = write_ranges_[i].lo;
  }
  for (;;) {
    double value = base;
    for (size_t i = 0; i < nv; ++i) {
      value *= views_[static_cast<size_t>(o.key_views[i])]
                   ->payload(entry_cursor_[i])[w.entry_slots[i]];
    }
    for (int i = 0; i < key_n; ++i) {
      const GroupPlan::KeySource& src = o.key_sources[static_cast<size_t>(i)];
      if (src.from_level) continue;
      // Locate the cursor of this source's view.
      for (size_t kv = 0; kv < nv; ++kv) {
        if (o.key_views[kv] == src.view_index) {
          key[i] = views_[static_cast<size_t>(src.view_index)]
                       ->col(src.comp)[entry_cursor_[kv]];
          break;
        }
      }
    }
    outputs_[static_cast<size_t>(w.output)]
        ->UpsertHashed(key, HashKeySpan(key, key_n))[w.slot] += value;
    // Advance the odometer.
    size_t i = 0;
    for (; i < nv; ++i) {
      if (++entry_cursor_[i] < write_ranges_[i].hi) break;
      entry_cursor_[i] = write_ranges_[i].lo;
    }
    if (i == nv) break;
  }
}

void GroupExecutor::WriteOutputs(int level) {
  // Writes for the same output are consecutive (the plan lowers slots in
  // order); outputs without key views share one key probe per match.
  int last_output = -1;
  double* payload = nullptr;
  for (const GroupPlan::Write& w :
       plan_.writes_at_level[static_cast<size_t>(level)]) {
    const GroupPlan::OutputInfo& o =
        plan_.outputs[static_cast<size_t>(w.output)];
    if (!o.key_views.empty()) {
      EmitWrite(w, level);
      continue;
    }
    if (w.output != last_output) {
      const int key_n = static_cast<int>(o.key_sources.size());
      int64_t key[TupleKey::kMaxArity];
      for (int i = 0; i < key_n; ++i) {
        key[i] =
            bound_[static_cast<size_t>(o.key_sources[static_cast<size_t>(i)]
                                           .level)];
      }
      payload = outputs_[static_cast<size_t>(w.output)]->UpsertHashed(
          key, HashKeySpan(key, key_n));
      last_output = w.output;
    }
    double v = w.alpha >= 0 ? alpha_vals_[static_cast<size_t>(w.alpha)] : 1.0;
    v *= SuffixValue(w.suffix);
    payload[w.slot] += v;
  }
}

void GroupExecutor::EmitLeafWrite(size_t leaf_write_index, size_t row) {
  const GroupPlan::LeafWrite& lw = plan_.leaf_writes[leaf_write_index];
  const GroupPlan::OutputInfo& o =
      plan_.outputs[static_cast<size_t>(lw.output)];
  const int levels = plan_.num_levels();
  double base = 1.0;
  for (const PlanPart& p : lw.parts) base *= EvalPart(p);
  for (const ResolvedFactor& rf : leaf_write_factors_[leaf_write_index]) {
    const double x =
        rf.icol != nullptr ? static_cast<double>(rf.icol[row]) : rf.dcol[row];
    base *= rf.fn.Eval(x);
  }
  const int key_n = static_cast<int>(o.key_sources.size());
  int64_t key[TupleKey::kMaxArity];
  for (int i = 0; i < key_n; ++i) {
    const GroupPlan::KeySource& src = o.key_sources[static_cast<size_t>(i)];
    if (src.from_level) {
      key[i] = bound_[static_cast<size_t>(src.level)];
    }
  }
  if (o.key_views.empty()) {
    outputs_[static_cast<size_t>(lw.output)]
        ->UpsertHashed(key, HashKeySpan(key, key_n))[lw.slot] += base;
    return;
  }
  const size_t nv = o.key_views.size();
  if (entry_cursor_.size() < nv) {
    entry_cursor_.resize(nv);
    write_ranges_.resize(nv);
  }
  for (size_t i = 0; i < nv; ++i) {
    write_ranges_[i] = ViewRangeAt(o.key_views[i], levels);
    if (write_ranges_[i].empty()) return;
    entry_cursor_[i] = write_ranges_[i].lo;
  }
  for (;;) {
    double value = base;
    for (size_t i = 0; i < nv; ++i) {
      value *= views_[static_cast<size_t>(o.key_views[i])]
                   ->payload(entry_cursor_[i])[lw.entry_slots[i]];
    }
    for (int i = 0; i < key_n; ++i) {
      const GroupPlan::KeySource& src = o.key_sources[static_cast<size_t>(i)];
      if (src.from_level) continue;
      for (size_t kv = 0; kv < nv; ++kv) {
        if (o.key_views[kv] == src.view_index) {
          key[i] = views_[static_cast<size_t>(src.view_index)]
                       ->col(src.comp)[entry_cursor_[kv]];
          break;
        }
      }
    }
    outputs_[static_cast<size_t>(lw.output)]
        ->UpsertHashed(key, HashKeySpan(key, key_n))[lw.slot] += value;
    size_t i = 0;
    for (; i < nv; ++i) {
      if (++entry_cursor_[i] < write_ranges_[i].hi) break;
      entry_cursor_[i] = write_ranges_[i].lo;
    }
    if (i == nv) break;
  }
}

}  // namespace lmfao
