#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "engine/simd_kernels.h"

namespace lmfao {

namespace {

/// Shared tail of the consumed-view build: argsorts u32 entry indices with
/// a comparator reading the *source* key components in consumed order (no
/// permuted key objects are ever materialized), then gathers each consumed
/// component into its own contiguous column and the payloads into the
/// layout this consumer's access pattern wants — columnar for multi-entry
/// consumption (range sums, entry iteration), row-major for single-entry
/// binds. `component(entry, canonical_comp)` reads the source container;
/// `gather_payloads(dst, sorted_entries)` fills the payload matrix from
/// the source's own layout (row-major ViewMap slots, either-layout
/// SortView).
template <typename ComponentFn, typename PayloadGatherFn>
ConsumedView ArgsortAndGather(int width, std::vector<uint32_t> entries,
                              const GroupPlan::IncomingView& incoming,
                              ComponentFn&& component,
                              PayloadGatherFn&& gather_payloads) {
  ConsumedView out;
  out.width = width;
  const PayloadLayout layout = incoming.IsMultiEntry()
                                   ? PayloadLayout::kColumnar
                                   : PayloadLayout::kRowMajor;
  // The plan layer precomputes consumed_perm; fall back to concatenating
  // the permutations for hand-built IncomingViews (tests, tooling).
  std::vector<int> perm = incoming.consumed_perm;
  if (perm.empty()) {
    perm = incoming.key_perm;
    perm.insert(perm.end(), incoming.extra_perm.begin(),
                incoming.extra_perm.end());
  }
  out.arity = static_cast<int>(perm.size());
  std::sort(entries.begin(), entries.end(),
            [&component, &perm](uint32_t a, uint32_t b) {
              for (int pos : perm) {
                const int64_t va = component(a, pos);
                const int64_t vb = component(b, pos);
                if (va != vb) return va < vb;
              }
              return false;
            });
  const size_t n = entries.size();
  out.owned_keys = KeyColumns(out.arity, n);
  for (int c = 0; c < out.arity; ++c) {
    int64_t* dst = out.owned_keys.col(c);
    const int pos = perm[static_cast<size_t>(c)];
    for (size_t i = 0; i < n; ++i) dst[i] = component(entries[i], pos);
    out.cols[static_cast<size_t>(c)] = dst;
  }
  out.owned_payloads = PayloadMatrix(width, n, layout);
  gather_payloads(&out.owned_payloads, entries);
  out.size = n;
  out.payload_base = out.owned_payloads.data();
  out.payload_layout = layout;
  out.payload_entry_stride = out.owned_payloads.entry_stride();
  out.payload_slot_stride = out.owned_payloads.slot_stride();
  return out;
}

/// Unit-stride dot product over two scratch columns (four independent
/// accumulators, same deterministic reduction shape as SumRange).
double DotRange(const double* a, const double* b, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

}  // namespace

ConsumedView ConsumedView::Borrow(const SortView& frozen) {
  ConsumedView out;
  out.arity = frozen.key_arity();
  out.width = frozen.width();
  out.size = frozen.size();
  for (int c = 0; c < out.arity; ++c) {
    out.cols[static_cast<size_t>(c)] = frozen.col(c);
  }
  const PayloadMatrix& pm = frozen.payload_matrix();
  out.payload_base = pm.data();
  out.payload_layout = pm.layout();
  out.payload_entry_stride = pm.entry_stride();
  out.payload_slot_stride = pm.slot_stride();
  return out;
}

ConsumedView BuildConsumedView(const ViewMap& produced,
                               const GroupPlan::IncomingView& incoming) {
  std::vector<uint32_t> entries;
  entries.reserve(produced.size());
  const size_t slots = produced.num_slots();
  LMFAO_CHECK_LT(slots, static_cast<size_t>(UINT32_MAX));
  for (size_t s = 0; s < slots; ++s) {
    if (produced.slot_occupied(s)) entries.push_back(static_cast<uint32_t>(s));
  }
  return ArgsortAndGather(
      produced.width(), std::move(entries), incoming,
      [&produced](uint32_t slot, int comp) {
        return produced.slot_key(slot)[comp];
      },
      [&produced](PayloadMatrix* dst, const std::vector<uint32_t>& order) {
        GatherRows(dst, [&produced, &order](size_t i) {
          return produced.slot_payload(order[i]);
        });
      });
}

ConsumedView BuildConsumedView(const SortView& produced,
                               const GroupPlan::IncomingView& incoming) {
  LMFAO_CHECK_LT(produced.size(), static_cast<size_t>(UINT32_MAX));
  std::vector<uint32_t> entries(produced.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i] = static_cast<uint32_t>(i);
  }
  return ArgsortAndGather(
      produced.width(), std::move(entries), incoming,
      [&produced](uint32_t row, int comp) { return produced.col(comp)[row]; },
      [&produced](PayloadMatrix* dst, const std::vector<uint32_t>& order) {
        // Either-layout source: permuted gather in destination order.
        if (dst->layout() == PayloadLayout::kColumnar) {
          for (int s = 0; s < dst->width(); ++s) {
            double* d = dst->col(s);
            for (size_t i = 0; i < order.size(); ++i) {
              d[i] = produced.payload_at(order[i], s);
            }
          }
        } else {
          for (size_t i = 0; i < order.size(); ++i) {
            double* d = dst->row(i);
            for (int s = 0; s < dst->width(); ++s) {
              d[s] = produced.payload_at(order[i], s);
            }
          }
        }
      });
}

GroupExecutor::GroupExecutor(const GroupPlan& plan,
                             const Relation& sorted_relation,
                             std::vector<const ConsumedView*> views,
                             const ParamPack* params, bool simd,
                             const CancelToken* cancel, size_t charge_base)
    : plan_(plan),
      relation_(sorted_relation),
      views_(std::move(views)),
      simd_(simd),
      cancel_(cancel != nullptr && cancel->armed() ? cancel : nullptr),
      charge_base_(charge_base) {
  const int levels = plan_.num_levels();
  level_rel_column_.assign(static_cast<size_t>(levels) + 1, nullptr);
  level_views_.assign(static_cast<size_t>(levels) + 1, {});
  for (int level = 1; level <= levels; ++level) {
    const int col = plan_.level_column[static_cast<size_t>(level - 1)];
    level_rel_column_[static_cast<size_t>(level)] =
        relation_.column(col).ints().data();
  }
  level_bound_views_.assign(static_cast<size_t>(levels) + 1, {});
  level_stride_ = static_cast<size_t>(levels) + 1;
  effective_level_.assign(plan_.incoming.size() * level_stride_, 0);
  for (size_t v = 0; v < plan_.incoming.size(); ++v) {
    const auto& in = plan_.incoming[v];
    for (size_t c = 0; c < in.key_levels.size(); ++c) {
      level_views_[static_cast<size_t>(in.key_levels[c])].emplace_back(
          static_cast<int>(v), static_cast<int>(c));
    }
    if (!in.IsMultiEntry() && in.bound_level >= 1) {
      level_bound_views_[static_cast<size_t>(in.bound_level)].push_back(
          static_cast<int>(v));
    }
    int* eff = effective_level_.data() + v * level_stride_;
    for (int l = 1; l <= levels; ++l) {
      const bool participates =
          std::find(in.key_levels.begin(), in.key_levels.end(), l) !=
          in.key_levels.end();
      eff[l] = participates ? l : eff[l - 1];
    }
  }

  // Batched leaf lowering: intern every distinct (column, function) leaf
  // factor once and resolve it to a typed kind-specialized kernel. The
  // plan's interned table and ids are reused when BuildGroupPlan lowered
  // them; hand-built plans (empty id lists) are interned here instead —
  // either way every id below indexes `table`.
  std::vector<std::pair<int, Function>> table = plan_.leaf_factor_table;
  auto resolve_ids =
      [&](const std::vector<std::pair<int, Function>>& factors,
          const std::vector<int>& plan_ids) {
        if (plan_ids.size() == factors.size()) {
          bool ok = true;
          for (int id : plan_ids) {
            ok = ok && id >= 0 &&
                 id < static_cast<int>(plan_.leaf_factor_table.size());
          }
          if (ok) return plan_ids;
        }
        std::vector<int> ids;
        ids.reserve(factors.size());
        for (const auto& [col, fn] : factors) {
          ids.push_back(InternLeafFactor(&table, col, fn));
        }
        return ids;
      };
  for (const auto& sum : plan_.leaf_sums) {
    leaf_sum_kernels_.push_back(resolve_ids(sum.factors, sum.factor_ids));
  }
  for (const auto& w : plan_.leaf_writes) {
    leaf_write_kernels_.push_back(resolve_ids(w.leaf_factors, w.factor_ids));
  }
  leaf_kernels_.reserve(table.size());
  for (const auto& [col, fn] : table) {
    const Column& c = relation_.column(col);
    leaf_kernels_.push_back(
        c.type() == AttrType::kInt
            ? MakeLeafKernel(c.ints().data(), nullptr, fn, params)
            : MakeLeafKernel(nullptr, c.doubles().data(), fn, params));
  }
  leaf_scratch_.resize(leaf_kernels_.size());

  // Flatten the register program: the interpreter's per-match loops run
  // over these contiguous op arrays instead of chasing the plan's nested
  // register/part vectors (a PlanPart drags a shared_ptr-carrying Function
  // through cache; an ExecPart is a quarter the size and sequential).
  auto lower_part = [this, params](const PlanPart& p) {
    ExecPart e{};
    e.kind = static_cast<uint8_t>(p.kind);
    e.view_index = static_cast<int16_t>(p.view_index);
    e.slot = p.slot;
    e.level = p.level;
    e.range_sum_id = p.range_sum_id;
    if (p.kind == PlanPart::Kind::kFactor) {
      e.fn_kind = static_cast<uint8_t>(p.factor.fn.kind());
      e.threshold = p.factor.fn.ResolvedThreshold(params);
      e.dict = p.factor.fn.dict().get();
    }
    exec_parts_.push_back(e);
  };
  // Registers are renumbered to op order (level-major) so one level's
  // values are contiguous; compute the renumbering first — beta suffixes
  // reference betas of deeper levels, which are lowered later.
  std::vector<int32_t> alpha_pos(plan_.alphas.size(), -1);
  std::vector<int32_t> beta_pos(plan_.betas.size(), -1);
  {
    int32_t na = 0;
    int32_t nb = 0;
    for (int l = 0; l <= levels; ++l) {
      for (int a : plan_.alphas_at_level[static_cast<size_t>(l)]) {
        alpha_pos[static_cast<size_t>(a)] = na++;
      }
      for (int b : plan_.betas_at_level[static_cast<size_t>(l)]) {
        beta_pos[static_cast<size_t>(b)] = nb++;
      }
    }
  }
  auto lower_suffix = [&beta_pos](const GroupPlan::Suffix& s,
                                  uint8_t* kind, int32_t* index) {
    *kind = static_cast<uint8_t>(s.kind);
    *index = s.kind == GroupPlan::SuffixKind::kBeta
                 ? beta_pos[static_cast<size_t>(s.index)]
                 : s.index;
  };
  // Fuse the dominant single-part shape (see RegOp docs).
  auto fuse_shape = [this](RegOp* op) {
    if (op->part_end - op->part_begin != 1) return;
    const ExecPart& p = exec_parts_[op->part_begin];
    if (static_cast<PlanPart::Kind>(p.kind) != PlanPart::Kind::kViewPayload) {
      return;
    }
    op->shape = RegShape::kPayload;
    op->view = p.view_index;
    op->slot = p.slot;
  };
  alpha_level_begin_.resize(static_cast<size_t>(levels) + 2);
  beta_level_begin_.resize(static_cast<size_t>(levels) + 2);
  write_level_begin_.resize(static_cast<size_t>(levels) + 2);
  for (int l = 0; l <= levels; ++l) {
    alpha_level_begin_[static_cast<size_t>(l)] =
        static_cast<uint32_t>(alpha_ops_.size());
    for (int a : plan_.alphas_at_level[static_cast<size_t>(l)]) {
      const GroupPlan::AlphaReg& reg = plan_.alphas[static_cast<size_t>(a)];
      RegOp op{};
      op.reg = alpha_pos[static_cast<size_t>(a)];
      op.prev =
          reg.prev >= 0 ? alpha_pos[static_cast<size_t>(reg.prev)] : -1;
      op.part_begin = static_cast<uint32_t>(exec_parts_.size());
      for (const PlanPart& p : reg.parts) lower_part(p);
      op.part_end = static_cast<uint32_t>(exec_parts_.size());
      fuse_shape(&op);
      alpha_ops_.push_back(op);
    }
    beta_level_begin_[static_cast<size_t>(l)] =
        static_cast<uint32_t>(beta_ops_.size());
    for (int b : plan_.betas_at_level[static_cast<size_t>(l)]) {
      const GroupPlan::BetaReg& reg = plan_.betas[static_cast<size_t>(b)];
      RegOp op{};
      op.reg = beta_pos[static_cast<size_t>(b)];
      op.prev = -1;
      lower_suffix(reg.next, &op.suffix_kind, &op.suffix_index);
      op.part_begin = static_cast<uint32_t>(exec_parts_.size());
      for (const PlanPart& p : reg.parts) lower_part(p);
      op.part_end = static_cast<uint32_t>(exec_parts_.size());
      fuse_shape(&op);
      beta_ops_.push_back(op);
    }
    write_level_begin_[static_cast<size_t>(l)] =
        static_cast<uint32_t>(write_ops_.size());
    for (const GroupPlan::Write& w :
         plan_.writes_at_level[static_cast<size_t>(l)]) {
      WriteOp op{};
      op.write = &w;
      op.output = w.output;
      op.slot = w.slot;
      op.alpha = w.alpha >= 0 ? alpha_pos[static_cast<size_t>(w.alpha)] : -1;
      lower_suffix(w.suffix, &op.suffix_kind, &op.suffix_index);
      op.keyed =
          !plan_.outputs[static_cast<size_t>(w.output)].key_views.empty();
      write_ops_.push_back(op);
    }
  }
  alpha_level_begin_[static_cast<size_t>(levels) + 1] =
      static_cast<uint32_t>(alpha_ops_.size());
  beta_level_begin_[static_cast<size_t>(levels) + 1] =
      static_cast<uint32_t>(beta_ops_.size());
  write_level_begin_[static_cast<size_t>(levels) + 1] =
      static_cast<uint32_t>(write_ops_.size());
  for (const GroupPlan::LeafWrite& lw : plan_.leaf_writes) {
    const uint32_t begin = static_cast<uint32_t>(exec_parts_.size());
    for (const PlanPart& p : lw.parts) lower_part(p);
    leaf_write_parts_.emplace_back(begin,
                                   static_cast<uint32_t>(exec_parts_.size()));
  }
  if (views_.size() == plan_.incoming.size()) FuseBetaRuns();
}

void GroupExecutor::FuseBetaRuns() {
  // Covariance-style batches lower hundreds of betas per level that each
  // read the next payload slot of the same bound view (one slot per
  // aggregate column); detect those runs once so AccumulateBetas replaces
  // the op-at-a-time scan with one contiguous elementwise loop per run.
  // Fusable ops read a row-major single-entry view (slot stride 1): the
  // run's payload block is then unit-stride off the cached match pointer,
  // and the level-major register renumbering makes the destination
  // beta_vals_ block contiguous as well.
  auto fusable = [this](const RegOp& op) {
    return op.shape == RegShape::kPayload && op.view >= 0 &&
           views_[static_cast<size_t>(op.view)]->payload_slot_stride == 1;
  };
  auto contiguous = [&fusable](const RegOp& a, const RegOp& b) {
    return fusable(b) && b.view == a.view && b.slot == a.slot + 1 &&
           b.reg == a.reg + 1;
  };
  const uint8_t beta_kind =
      static_cast<uint8_t>(GroupPlan::SuffixKind::kBeta);
  const int levels = plan_.num_levels();
  for (int l = 0; l <= levels; ++l) {
    const uint32_t slice_end = beta_level_begin_[static_cast<size_t>(l) + 1];
    uint32_t i = beta_level_begin_[static_cast<size_t>(l)];
    while (i < slice_end) {
      RegOp& head = beta_ops_[i];
      if (!fusable(head) || i + 1 >= slice_end) {
        ++i;
        continue;
      }
      const RegOp& second = beta_ops_[i + 1];
      RunKind kind;
      if (contiguous(head, second) &&
          second.suffix_kind == head.suffix_kind &&
          second.suffix_index == head.suffix_index) {
        kind = RunKind::kScalarSuffix;
      } else if (contiguous(head, second) && head.suffix_kind == beta_kind &&
                 second.suffix_kind == beta_kind &&
                 second.suffix_index == head.suffix_index + 1) {
        kind = RunKind::kPairSuffix;
      } else {
        ++i;
        continue;
      }
      uint32_t j = i + 1;
      while (j < slice_end) {
        const RegOp& prev = beta_ops_[j - 1];
        const RegOp& cur = beta_ops_[j];
        if (!contiguous(prev, cur)) break;
        if (kind == RunKind::kScalarSuffix
                ? (cur.suffix_kind != head.suffix_kind ||
                   cur.suffix_index != head.suffix_index)
                : (cur.suffix_kind != beta_kind ||
                   cur.suffix_index != prev.suffix_index + 1)) {
          break;
        }
        ++j;
      }
      const int32_t len = static_cast<int32_t>(j - i);
      bool ok = len > 1;
      if (ok && kind == RunKind::kPairSuffix) {
        // Pair runs read beta_vals_[suffix..] while writing
        // beta_vals_[reg..]; the suffixes are deeper-level betas so the
        // intervals never overlap in practice, but fusing an overlapping
        // run would change results — require disjointness.
        const int32_t r0 = head.reg;
        const int32_t s0 = head.suffix_index;
        ok = s0 + len <= r0 || r0 + len <= s0;
      }
      if (ok) {
        head.run_len = len;
        head.run_kind = kind;
        for (uint32_t k = i + 1; k < j; ++k) beta_ops_[k].run_len = 0;
      }
      i = j;
    }
  }
}

Status GroupExecutor::Validate() const {
  if (views_.size() != plan_.incoming.size()) {
    return Status::InvalidArgument("executor: view count mismatch");
  }
  for (size_t v = 0; v < views_.size(); ++v) {
    if (views_[v]->width != plan_.incoming[v].width) {
      return Status::InvalidArgument("executor: view width mismatch");
    }
    // The range-sum and entry-iteration kernels read contiguous payload
    // columns; multi-entry views must therefore arrive columnar
    // (BuildConsumedView and the plan's freeze layout guarantee it).
    if (plan_.incoming[v].IsMultiEntry() &&
        views_[v]->payload_layout != PayloadLayout::kColumnar) {
      return Status::InvalidArgument(
          "executor: multi-entry view payload must be columnar");
    }
  }
  return Status::OK();
}

void GroupExecutor::Prepare(const std::vector<ViewMap*>& outputs) {
  const int levels = plan_.num_levels();
  rel_range_.assign(static_cast<size_t>(levels) + 1, Range{});
  rel_range_[0] = Range{0, relation_.num_rows()};
  view_range_.assign(views_.size() * level_stride_, Range{});
  for (size_t v = 0; v < views_.size(); ++v) {
    view_range_[v * level_stride_] = Range{0, views_[v]->size};
  }
  bound_.assign(static_cast<size_t>(levels) + 1, 0);
  view_payload_cache_.assign(views_.size(), PayloadRef{});
  for (size_t v = 0; v < views_.size(); ++v) {
    view_payload_cache_[v].sstride = views_[v]->payload_slot_stride;
  }
  alpha_vals_.assign(plan_.alphas.size(), 0.0);
  beta_vals_.assign(plan_.betas.size(), 0.0);
  leaf_vals_.assign(plan_.leaf_sums.size(), 0.0);
  range_sum_cache_.assign(static_cast<size_t>(plan_.num_range_sums),
                          RangeSumCache{});
  outputs_ = outputs;
}

Status GroupExecutor::Execute(const std::vector<ViewMap*>& outputs) {
  return ExecuteShard(outputs, 0, 1);
}

Status GroupExecutor::ExecuteShard(const std::vector<ViewMap*>& outputs,
                                   int shard, int num_shards) {
  LMFAO_RETURN_NOT_OK(Validate());
  if (outputs.size() != plan_.outputs.size()) {
    return Status::InvalidArgument("executor: output count mismatch");
  }
  // The write paths hand raw key_sources-sized spans to UpsertHashed (which
  // cannot check a span length), so pin the arity invariant once up front.
  for (size_t o = 0; o < outputs.size(); ++o) {
    if (outputs[o]->key_arity() !=
        static_cast<int>(plan_.outputs[o].key_sources.size())) {
      return Status::InvalidArgument("executor: output key arity mismatch");
    }
  }
  Prepare(outputs);
  abort_status_ = Status::OK();
  cancel_countdown_ = kCancelCheckInterval;
  if (cancel_ != nullptr) {
    LMFAO_RETURN_NOT_OK(cancel_->Check(charge_base_));
  }
  const int levels = plan_.num_levels();
  if (levels == 0) {
    // Single flat scan; only shard 0 contributes.
    if (shard == 0) {
      for (double& v : leaf_vals_) v = 0.0;
      LeafLoop(rel_range_[0]);
      WriteOutputs(0);
    }
    return Status::OK();
  }
  for (uint32_t i = beta_level_begin_[1]; i < beta_level_begin_[2]; ++i) {
    beta_vals_[static_cast<size_t>(beta_ops_[i].reg)] = 0.0;
  }
  IterateLevel(1, shard, num_shards);
  LMFAO_RETURN_NOT_OK(abort_status_);
  // Write outputs with empty write level; their beta values are
  // shard-partial sums, so every shard emits and the caller merges.
  WriteOutputs(0);
  return Status::OK();
}

void GroupExecutor::IterateLevel(int level, int shard, int num_shards) {
  const int64_t* rel_col = level_rel_column_[static_cast<size_t>(level)];
  const Range rel = rel_range_[static_cast<size_t>(level - 1)];
  const auto& vps = level_views_[static_cast<size_t>(level)];

  size_t rel_pos = rel.lo;
  // Small inline cursor buffers: IterateLevel is called once per parent
  // value, so heap allocation here would dominate small subtries. vcols
  // caches each participant's contiguous key column — every seek below is
  // a galloping search over a plain int64 array.
  size_t vpos[kMaxLevelViews];
  size_t vhis[kMaxLevelViews];
  const int64_t* vcols[kMaxLevelViews];
  LMFAO_CHECK_LE(vps.size(), kMaxLevelViews);
  for (size_t i = 0; i < vps.size(); ++i) {
    const Range parent = ViewRangeAt(vps[i].first, level - 1);
    vpos[i] = parent.lo;
    vhis[i] = parent.hi;
    vcols[i] = views_[static_cast<size_t>(vps[i].first)]->col(vps[i].second);
  }
  auto view_hi = [&](size_t i) { return vhis[i]; };
  auto view_val = [&](size_t i) { return vcols[i][vpos[i]]; };

  if (rel.empty()) return;
  for (size_t i = 0; i < vps.size(); ++i) {
    if (vpos[i] >= view_hi(i)) return;
  }

  size_t match_index = 0;
  for (;;) {
    int64_t target = rel_col[rel_pos];
    bool exhausted = false;
    for (;;) {
      bool all_equal = true;
      if (rel_col[rel_pos] < target) {
        rel_pos = GallopLowerBound(rel_col, rel_pos, rel.hi, target);
        if (rel_pos >= rel.hi) {
          exhausted = true;
          break;
        }
      }
      if (rel_col[rel_pos] > target) {
        target = rel_col[rel_pos];
        all_equal = false;
      }
      for (size_t i = 0; i < vps.size(); ++i) {
        if (view_val(i) < target) {
          vpos[i] = GallopLowerBound(vcols[i], vpos[i], view_hi(i), target);
          if (vpos[i] >= view_hi(i)) {
            exhausted = true;
            break;
          }
        }
        if (view_val(i) > target) {
          target = view_val(i);
          all_equal = false;
        }
      }
      if (exhausted) break;
      if (all_equal && rel_col[rel_pos] == target) break;
    }
    if (exhausted) return;

    // Equal runs for each participant.
    const size_t rel_run_end =
        GallopUpperBound(rel_col, rel_pos, rel.hi, target);
    rel_range_[static_cast<size_t>(level)] = Range{rel_pos, rel_run_end};
    for (size_t i = 0; i < vps.size(); ++i) {
      const size_t run_end =
          GallopUpperBound(vcols[i], vpos[i], view_hi(i), target);
      view_range_[static_cast<size_t>(vps[i].first) * level_stride_ +
                  static_cast<size_t>(level)] = Range{vpos[i], run_end};
    }

    const bool mine =
        level > 1 || num_shards <= 1 ||
        (match_index % static_cast<size_t>(num_shards)) ==
            static_cast<size_t>(shard);
    if (mine) {
      ProcessMatch(level, target, shard, num_shards);
      if (!abort_status_.ok()) return;
    }
    ++match_index;

    rel_pos = rel_range_[static_cast<size_t>(level)].hi;
    if (rel_pos >= rel.hi) return;
    for (size_t i = 0; i < vps.size(); ++i) {
      vpos[i] = view_range_[static_cast<size_t>(vps[i].first) *
                                level_stride_ +
                            static_cast<size_t>(level)]
                    .hi;
      if (vpos[i] >= view_hi(i)) return;
    }
  }
}

void GroupExecutor::ProcessMatch(int level, int64_t value, int shard,
                                 int num_shards) {
  // Amortized deadline/budget poll: once every kCancelCheckInterval
  // matches, charging the pass baseline plus this executor's in-flight
  // output maps. A trip unwinds the whole trie iteration via
  // abort_status_ (checked after every ProcessMatch in IterateLevel).
  if (cancel_ != nullptr && --cancel_countdown_ <= 0) {
    cancel_countdown_ = kCancelCheckInterval;
    size_t charged = charge_base_;
    if (cancel_->budget_bytes() != 0) {  // deadline-only passes skip the sum
      for (const ViewMap* m : outputs_) charged += m->MemoryUsage();
    }
    abort_status_ = cancel_->Check(charged);
    if (!abort_status_.ok()) return;
  }
  bound_[static_cast<size_t>(level)] = value;
  for (int v : level_bound_views_[static_cast<size_t>(level)]) {
    const Range& r = view_range_[static_cast<size_t>(v) * level_stride_ +
                                 static_cast<size_t>(level)];
    const ConsumedView* cv = views_[static_cast<size_t>(v)];
    view_payload_cache_[static_cast<size_t>(v)].ptr =
        cv->payload_base + r.lo * cv->payload_entry_stride;
  }
  EvalAlphas(level);
  const int levels = plan_.num_levels();
  if (level == levels) {
    for (double& v : leaf_vals_) v = 0.0;
    LeafLoop(rel_range_[static_cast<size_t>(level)]);
  } else {
    const size_t next = static_cast<size_t>(level) + 1;
    for (uint32_t i = beta_level_begin_[next]; i < beta_level_begin_[next + 1];
         ++i) {
      beta_vals_[static_cast<size_t>(beta_ops_[i].reg)] = 0.0;
    }
    IterateLevel(level + 1, shard, num_shards);
    if (!abort_status_.ok()) return;
  }
  AccumulateBetas(level);
  WriteOutputs(level);
}

void GroupExecutor::LeafLoop(const Range& range) {
  if (range.empty()) return;
  const size_t rows = range.hi - range.lo;
  if (!leaf_kernels_.empty() && leaf_scratch_rows_ < rows) {
    for (auto& s : leaf_scratch_) s.resize(rows);
    leaf_prod_scratch_.resize(rows);
    leaf_scratch_rows_ = rows;
  }
  // Lower each distinct (column, function) factor once for this run: the
  // kind-specialized kernels fill whole scratch columns with no per-row
  // dispatch.
  for (size_t k = 0; k < leaf_kernels_.size(); ++k) {
    leaf_kernels_[k].fill(leaf_kernels_[k], range.lo, range.hi,
                          leaf_scratch_[k].data());
  }
  // Leaf sums: unit-stride products over the scratch columns.
  for (size_t s = 0; s < leaf_sum_kernels_.size(); ++s) {
    leaf_vals_[s] += ScratchProductSum(leaf_sum_kernels_[s], rows);
  }
  // Non-factorized leaf writes, hoisted from per-row to whole-range form.
  for (size_t w = 0; w < plan_.leaf_writes.size(); ++w) {
    EmitLeafWriteBatch(w, rows);
  }
}

double GroupExecutor::ScratchProductSum(const std::vector<int>& kernel_ids,
                                        size_t rows) {
  switch (kernel_ids.size()) {
    case 0:
      return static_cast<double>(rows);  // SUM(1): the tuple count.
    case 1: {
      const double* a =
          leaf_scratch_[static_cast<size_t>(kernel_ids[0])].data();
      return simd_ && rows >= simd::kMinVectorLen ? simd::SumRange(a, 0, rows)
                                                  : SumRange(a, 0, rows);
    }
    case 2: {
      const double* a =
          leaf_scratch_[static_cast<size_t>(kernel_ids[0])].data();
      const double* b =
          leaf_scratch_[static_cast<size_t>(kernel_ids[1])].data();
      return simd_ && rows >= simd::kMinVectorLen
                 ? simd::DotRange(a, b, rows)
                 : DotRange(a, b, rows);
    }
    default: {
      double* prod = leaf_prod_scratch_.data();
      std::memcpy(prod,
                  leaf_scratch_[static_cast<size_t>(kernel_ids[0])].data(),
                  rows * sizeof(double));
      for (size_t f = 1; f + 1 < kernel_ids.size(); ++f) {
        const double* a =
            leaf_scratch_[static_cast<size_t>(kernel_ids[f])].data();
        if (simd_ && rows >= simd::kMinVectorLen) {
          simd::MulInPlace(prod, a, rows);
        } else {
          for (size_t i = 0; i < rows; ++i) prod[i] *= a[i];
        }
      }
      const double* last =
          leaf_scratch_[static_cast<size_t>(kernel_ids.back())].data();
      return simd_ && rows >= simd::kMinVectorLen
                 ? simd::DotRange(prod, last, rows)
                 : DotRange(prod, last, rows);
    }
  }
}

GroupExecutor::Range GroupExecutor::ViewRangeAt(int view_index,
                                                int level) const {
  const size_t row = static_cast<size_t>(view_index) * level_stride_;
  const int effective = effective_level_[row + static_cast<size_t>(level)];
  return view_range_[row + static_cast<size_t>(effective)];
}

double GroupExecutor::EvalExecPart(const ExecPart& part) {
  switch (static_cast<PlanPart::Kind>(part.kind)) {
    case PlanPart::Kind::kFactor: {
      // Scalar factor of the bound level value: the function kind and
      // parameters were flattened into the op, so no Function object (or
      // its shared_ptr) is touched here. Semantics match Function::Eval.
      const double x =
          static_cast<double>(bound_[static_cast<size_t>(part.level)]);
      switch (static_cast<FunctionKind>(part.fn_kind)) {
        case FunctionKind::kIdentity:
          return x;
        case FunctionKind::kSquare:
          return x * x;
        case FunctionKind::kDictionary: {
          const auto it = part.dict->table.find(
              static_cast<int64_t>(std::llround(x)));
          return it == part.dict->table.end() ? part.dict->default_value
                                              : it->second;
        }
        case FunctionKind::kIndicatorLe:
          return x <= part.threshold ? 1.0 : 0.0;
        case FunctionKind::kIndicatorLt:
          return x < part.threshold ? 1.0 : 0.0;
        case FunctionKind::kIndicatorGe:
          return x >= part.threshold ? 1.0 : 0.0;
        case FunctionKind::kIndicatorGt:
          return x > part.threshold ? 1.0 : 0.0;
        case FunctionKind::kIndicatorEq:
          return x == part.threshold ? 1.0 : 0.0;
        case FunctionKind::kIndicatorNe:
          return x != part.threshold ? 1.0 : 0.0;
      }
      return 0.0;
    }
    case PlanPart::Kind::kViewPayload: {
      const PayloadRef& pr =
          view_payload_cache_[static_cast<size_t>(part.view_index)];
      return pr.ptr[static_cast<size_t>(part.slot) * pr.sstride];
    }
    case PlanPart::Kind::kViewRangeSum: {
      const Range r = ViewRangeAt(part.view_index, part.level);
      const ConsumedView* v = views_[static_cast<size_t>(part.view_index)];
      if (part.range_sum_id >= 0 &&
          static_cast<size_t>(part.range_sum_id) < range_sum_cache_.size()) {
        RangeSumCache& c =
            range_sum_cache_[static_cast<size_t>(part.range_sum_id)];
        if (c.lo == r.lo && c.hi == r.hi) return c.sum;
        const double sum = simd_ && r.hi - r.lo >= simd::kMinVectorLen
                               ? simd::SumRange(v->pcol(part.slot), r.lo, r.hi)
                               : SumRange(v->pcol(part.slot), r.lo, r.hi);
        c.lo = r.lo;
        c.hi = r.hi;
        c.sum = sum;
        return sum;
      }
      return simd_ && r.hi - r.lo >= simd::kMinVectorLen
                 ? simd::SumRange(v->pcol(part.slot), r.lo, r.hi)
                 : SumRange(v->pcol(part.slot), r.lo, r.hi);
    }
  }
  return 1.0;
}

double GroupExecutor::SuffixValue(uint8_t kind, int32_t index) const {
  switch (static_cast<GroupPlan::SuffixKind>(kind)) {
    case GroupPlan::SuffixKind::kOne:
      return 1.0;
    case GroupPlan::SuffixKind::kLeaf:
      return leaf_vals_[static_cast<size_t>(index)];
    case GroupPlan::SuffixKind::kBeta:
      return beta_vals_[static_cast<size_t>(index)];
  }
  return 1.0;
}

void GroupExecutor::EvalAlphas(int level) {
  const uint32_t end = alpha_level_begin_[static_cast<size_t>(level) + 1];
  for (uint32_t i = alpha_level_begin_[static_cast<size_t>(level)]; i < end;
       ++i) {
    const RegOp& op = alpha_ops_[i];
    double v = op.prev >= 0 ? alpha_vals_[static_cast<size_t>(op.prev)] : 1.0;
    if (op.shape == RegShape::kPayload) {
      const PayloadRef& pr = view_payload_cache_[static_cast<size_t>(op.view)];
      v *= pr.ptr[static_cast<size_t>(op.slot) * pr.sstride];
    } else {
      for (uint32_t p = op.part_begin; p < op.part_end; ++p) {
        v *= EvalExecPart(exec_parts_[p]);
      }
    }
    alpha_vals_[static_cast<size_t>(op.reg)] = v;
  }
}

void GroupExecutor::AccumulateBetas(int level) {
  const uint32_t end = beta_level_begin_[static_cast<size_t>(level) + 1];
  for (uint32_t i = beta_level_begin_[static_cast<size_t>(level)]; i < end;
       ++i) {
    const RegOp& op = beta_ops_[i];
    if (op.run_len != 1) {
      if (op.run_len == 0) continue;  // Member of a fused run.
      // Fused kPayload run: one contiguous elementwise loop over the
      // bound entry's payload block (slot stride 1, see FuseBetaRuns).
      // Each element does the same multiply-add the per-op path does, so
      // results are bit-identical — scalar or SIMD.
      const PayloadRef& pr = view_payload_cache_[static_cast<size_t>(op.view)];
      const double* src = pr.ptr + static_cast<size_t>(op.slot);
      double* dst = beta_vals_.data() + static_cast<size_t>(op.reg);
      const size_t n = static_cast<size_t>(op.run_len);
      if (op.run_kind == RunKind::kScalarSuffix) {
        const double s = SuffixValue(op.suffix_kind, op.suffix_index);
        if (simd_ && n >= simd::kMinVectorLen) {
          simd::Axpy(dst, src, s, n);
        } else {
          for (size_t k = 0; k < n; ++k) dst[k] += src[k] * s;
        }
      } else {
        const double* suf =
            beta_vals_.data() + static_cast<size_t>(op.suffix_index);
        if (simd_ && n >= simd::kMinVectorLen) {
          simd::MulAddPairs(dst, src, suf, n);
        } else {
          for (size_t k = 0; k < n; ++k) dst[k] += src[k] * suf[k];
        }
      }
      continue;
    }
    double v = SuffixValue(op.suffix_kind, op.suffix_index);
    if (op.shape == RegShape::kPayload) {
      const PayloadRef& pr = view_payload_cache_[static_cast<size_t>(op.view)];
      v *= pr.ptr[static_cast<size_t>(op.slot) * pr.sstride];
    } else {
      for (uint32_t p = op.part_begin; p < op.part_end; ++p) {
        v *= EvalExecPart(exec_parts_[p]);
      }
    }
    beta_vals_[static_cast<size_t>(op.reg)] += v;
  }
}

void GroupExecutor::EmitKeyedWrite(const GroupPlan::OutputInfo& o, int output,
                                   int slot,
                                   const std::vector<int>& entry_slots,
                                   double base, int level) {
  // Raw packed key buffer: only the output's actual arity is touched, and
  // UpsertHashed skips the inline-tuple handle entirely.
  const int key_n = static_cast<int>(o.key_sources.size());
  int64_t key[TupleKey::kMaxArity];
  // Fill level-sourced components once.
  for (int i = 0; i < key_n; ++i) {
    const GroupPlan::KeySource& src = o.key_sources[static_cast<size_t>(i)];
    if (src.from_level) {
      key[i] = bound_[static_cast<size_t>(src.level)];
    }
  }
  if (o.key_views.empty()) {
    outputs_[static_cast<size_t>(output)]
        ->UpsertHashed(key, HashKeySpan(key, key_n))[slot] += base;
    return;
  }
  // Iterate the cross product of the key views' entry ranges. The entry
  // payload columns are resolved once, outside the odometer.
  const size_t nv = o.key_views.size();
  if (entry_cursor_.size() < nv) {
    entry_cursor_.resize(nv);
    write_ranges_.resize(nv);
  }
  const double* entry_pcols[TupleKey::kMaxArity];
  for (size_t i = 0; i < nv; ++i) {
    write_ranges_[i] = ViewRangeAt(o.key_views[i], level);
    if (write_ranges_[i].empty()) return;
    entry_cursor_[i] = write_ranges_[i].lo;
    entry_pcols[i] = views_[static_cast<size_t>(o.key_views[i])]->pcol(
        entry_slots[i]);
  }
  for (;;) {
    double value = base;
    for (size_t i = 0; i < nv; ++i) {
      value *= entry_pcols[i][entry_cursor_[i]];
    }
    for (int i = 0; i < key_n; ++i) {
      const GroupPlan::KeySource& src = o.key_sources[static_cast<size_t>(i)];
      if (src.from_level) continue;
      // Locate the cursor of this source's view.
      for (size_t kv = 0; kv < nv; ++kv) {
        if (o.key_views[kv] == src.view_index) {
          key[i] = views_[static_cast<size_t>(src.view_index)]
                       ->col(src.comp)[entry_cursor_[kv]];
          break;
        }
      }
    }
    outputs_[static_cast<size_t>(output)]
        ->UpsertHashed(key, HashKeySpan(key, key_n))[slot] += value;
    // Advance the odometer.
    size_t i = 0;
    for (; i < nv; ++i) {
      if (++entry_cursor_[i] < write_ranges_[i].hi) break;
      entry_cursor_[i] = write_ranges_[i].lo;
    }
    if (i == nv) break;
  }
}

void GroupExecutor::WriteOutputs(int level) {
  // Writes for the same output are consecutive (the plan lowers slots in
  // order); outputs without key views share one key probe per match. The
  // non-keyed fast path reads only the flat WriteOp.
  int last_output = -1;
  double* payload = nullptr;
  const uint32_t end = write_level_begin_[static_cast<size_t>(level) + 1];
  for (uint32_t i = write_level_begin_[static_cast<size_t>(level)]; i < end;
       ++i) {
    const WriteOp& op = write_ops_[i];
    if (op.keyed) {
      double base =
          op.alpha >= 0 ? alpha_vals_[static_cast<size_t>(op.alpha)] : 1.0;
      base *= SuffixValue(op.suffix_kind, op.suffix_index);
      EmitKeyedWrite(plan_.outputs[static_cast<size_t>(op.output)], op.output,
                     op.slot, op.write->entry_slots, base, level);
      continue;
    }
    if (op.output != last_output) {
      const GroupPlan::OutputInfo& o =
          plan_.outputs[static_cast<size_t>(op.output)];
      const int key_n = static_cast<int>(o.key_sources.size());
      int64_t key[TupleKey::kMaxArity];
      for (int i2 = 0; i2 < key_n; ++i2) {
        key[i2] =
            bound_[static_cast<size_t>(o.key_sources[static_cast<size_t>(i2)]
                                           .level)];
      }
      payload = outputs_[static_cast<size_t>(op.output)]->UpsertHashed(
          key, HashKeySpan(key, key_n));
      last_output = op.output;
    }
    double v =
        op.alpha >= 0 ? alpha_vals_[static_cast<size_t>(op.alpha)] : 1.0;
    v *= SuffixValue(op.suffix_kind, op.suffix_index);
    payload[op.slot] += v;
  }
}

void GroupExecutor::EmitLeafWriteBatch(size_t leaf_write_index, size_t rows) {
  const GroupPlan::LeafWrite& lw = plan_.leaf_writes[leaf_write_index];
  const GroupPlan::OutputInfo& o =
      plan_.outputs[static_cast<size_t>(lw.output)];
  // The view parts are loop-invariant over the leaf range and the per-row
  // factor product distributes over the row sum, so one whole-range write
  // replaces the old per-row emission (same keys: the key components come
  // from bound levels and view entries, never from the row).
  double base = 1.0;
  const auto& [part_begin, part_end] = leaf_write_parts_[leaf_write_index];
  for (uint32_t p = part_begin; p < part_end; ++p) {
    base *= EvalExecPart(exec_parts_[p]);
  }
  base *= ScratchProductSum(leaf_write_kernels_[leaf_write_index], rows);
  EmitKeyedWrite(o, lw.output, lw.slot, lw.entry_slots, base,
                 plan_.num_levels());
}

}  // namespace lmfao
