#include "engine/executor.h"

#include <algorithm>

namespace lmfao {

namespace {

/// Permutes entries into (relation components by level, then extras),
/// sorts, and copies payloads contiguously. `for_each` must invoke its
/// callback as fn(const TupleKey&, const double*).
template <typename ForEach>
ConsumedView PermuteAndSort(int width, size_t num_entries,
                            const GroupPlan::IncomingView& incoming,
                            ForEach&& for_each) {
  ConsumedView out;
  out.width = width;
  std::vector<std::pair<TupleKey, const double*>> entries;
  entries.reserve(num_entries);
  const int arity = static_cast<int>(incoming.key_perm.size() +
                                     incoming.extra_perm.size());
  for_each([&](const TupleKey& key, const double* payload) {
    TupleKey permuted(arity);
    int c = 0;
    for (int pos : incoming.key_perm) permuted.set(c++, key[pos]);
    for (int pos : incoming.extra_perm) permuted.set(c++, key[pos]);
    entries.emplace_back(permuted, payload);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.owned_keys.reserve(entries.size());
  out.owned_payloads.resize(entries.size() * static_cast<size_t>(width));
  for (size_t i = 0; i < entries.size(); ++i) {
    out.owned_keys.push_back(entries[i].first);
    std::copy(entries[i].second, entries[i].second + width,
              out.owned_payloads.begin() +
                  static_cast<long>(i * static_cast<size_t>(width)));
  }
  out.size = out.owned_keys.size();
  out.keys = out.owned_keys.data();
  out.payloads = out.owned_payloads.data();
  return out;
}

}  // namespace

ConsumedView ConsumedView::Borrow(const SortView& frozen) {
  ConsumedView out;
  out.width = frozen.width();
  out.size = frozen.size();
  out.keys = frozen.keys().data();
  out.payloads = frozen.payloads().data();
  return out;
}

ConsumedView BuildConsumedView(const ViewMap& produced,
                               const GroupPlan::IncomingView& incoming) {
  return PermuteAndSort(produced.width(), produced.size(), incoming,
                        [&](auto&& fn) { produced.ForEach(fn); });
}

ConsumedView BuildConsumedView(const SortView& produced,
                               const GroupPlan::IncomingView& incoming) {
  return PermuteAndSort(produced.width(), produced.size(), incoming,
                        [&](auto&& fn) {
                          for (size_t i = 0; i < produced.size(); ++i) {
                            fn(produced.key(i), produced.payload(i));
                          }
                        });
}

GroupExecutor::GroupExecutor(const GroupPlan& plan,
                             const Relation& sorted_relation,
                             std::vector<const ConsumedView*> views)
    : plan_(plan), relation_(sorted_relation), views_(std::move(views)) {
  const int levels = plan_.num_levels();
  level_rel_column_.assign(static_cast<size_t>(levels) + 1, nullptr);
  level_views_.assign(static_cast<size_t>(levels) + 1, {});
  for (int level = 1; level <= levels; ++level) {
    const int col = plan_.level_column[static_cast<size_t>(level - 1)];
    level_rel_column_[static_cast<size_t>(level)] =
        relation_.column(col).ints().data();
  }
  level_bound_views_.assign(static_cast<size_t>(levels) + 1, {});
  effective_level_.assign(plan_.incoming.size(), {});
  for (size_t v = 0; v < plan_.incoming.size(); ++v) {
    const auto& in = plan_.incoming[v];
    for (size_t c = 0; c < in.key_levels.size(); ++c) {
      level_views_[static_cast<size_t>(in.key_levels[c])].emplace_back(
          static_cast<int>(v), static_cast<int>(c));
    }
    if (!in.IsMultiEntry() && in.bound_level >= 1) {
      level_bound_views_[static_cast<size_t>(in.bound_level)].push_back(
          static_cast<int>(v));
    }
    auto& eff = effective_level_[v];
    eff.assign(static_cast<size_t>(levels) + 1, 0);
    for (int l = 1; l <= levels; ++l) {
      const bool participates =
          std::find(in.key_levels.begin(), in.key_levels.end(), l) !=
          in.key_levels.end();
      eff[static_cast<size_t>(l)] =
          participates ? l : eff[static_cast<size_t>(l - 1)];
    }
  }
  auto resolve = [this](const std::vector<std::pair<int, Function>>& factors) {
    std::vector<ResolvedFactor> out;
    for (const auto& [col, fn] : factors) {
      ResolvedFactor rf;
      rf.fn = fn;
      if (relation_.column(col).type() == AttrType::kInt) {
        rf.icol = relation_.column(col).ints().data();
      } else {
        rf.dcol = relation_.column(col).doubles().data();
      }
      out.push_back(rf);
    }
    return out;
  };
  for (const auto& sum : plan_.leaf_sums) {
    leaf_factors_.push_back(resolve(sum.factors));
  }
  for (const auto& w : plan_.leaf_writes) {
    leaf_write_factors_.push_back(resolve(w.leaf_factors));
  }
}

Status GroupExecutor::Validate() const {
  if (views_.size() != plan_.incoming.size()) {
    return Status::InvalidArgument("executor: view count mismatch");
  }
  for (size_t v = 0; v < views_.size(); ++v) {
    if (views_[v]->width != plan_.incoming[v].width) {
      return Status::InvalidArgument("executor: view width mismatch");
    }
  }
  return Status::OK();
}

void GroupExecutor::Prepare(const std::vector<ViewMap*>& outputs) {
  const int levels = plan_.num_levels();
  rel_range_.assign(static_cast<size_t>(levels) + 1, Range{});
  rel_range_[0] = Range{0, relation_.num_rows()};
  view_range_.assign(views_.size(), {});
  for (size_t v = 0; v < views_.size(); ++v) {
    view_range_[v].assign(static_cast<size_t>(levels) + 1, Range{});
    view_range_[v][0] = Range{0, views_[v]->size};
  }
  bound_.assign(static_cast<size_t>(levels) + 1, 0);
  view_payload_cache_.assign(views_.size(), nullptr);
  alpha_vals_.assign(plan_.alphas.size(), 0.0);
  beta_vals_.assign(plan_.betas.size(), 0.0);
  leaf_vals_.assign(plan_.leaf_sums.size(), 0.0);
  outputs_ = outputs;
}

Status GroupExecutor::Execute(const std::vector<ViewMap*>& outputs) {
  return ExecuteShard(outputs, 0, 1);
}

Status GroupExecutor::ExecuteShard(const std::vector<ViewMap*>& outputs,
                                   int shard, int num_shards) {
  LMFAO_RETURN_NOT_OK(Validate());
  if (outputs.size() != plan_.outputs.size()) {
    return Status::InvalidArgument("executor: output count mismatch");
  }
  Prepare(outputs);
  const int levels = plan_.num_levels();
  if (levels == 0) {
    // Single flat scan; only shard 0 contributes.
    if (shard == 0) {
      for (double& v : leaf_vals_) v = 0.0;
      LeafLoop(rel_range_[0]);
      WriteOutputs(0);
    }
    return Status::OK();
  }
  for (int b : plan_.betas_at_level[1]) {
    beta_vals_[static_cast<size_t>(b)] = 0.0;
  }
  IterateLevel(1, shard, num_shards);
  // Write outputs with empty write level; their beta values are
  // shard-partial sums, so every shard emits and the caller merges.
  WriteOutputs(0);
  return Status::OK();
}

void GroupExecutor::IterateLevel(int level, int shard, int num_shards) {
  const int64_t* rel_col = level_rel_column_[static_cast<size_t>(level)];
  const Range rel = rel_range_[static_cast<size_t>(level - 1)];
  const auto& vps = level_views_[static_cast<size_t>(level)];

  size_t rel_pos = rel.lo;
  // Small inline cursor buffer: IterateLevel is called once per parent
  // value, so heap allocation here would dominate small subtries.
  size_t vpos[kMaxLevelViews];
  size_t vhis[kMaxLevelViews];
  LMFAO_CHECK_LE(vps.size(), kMaxLevelViews);
  for (size_t i = 0; i < vps.size(); ++i) {
    const Range parent = ViewRangeAt(vps[i].first, level - 1);
    vpos[i] = parent.lo;
    vhis[i] = parent.hi;
  }
  auto view_hi = [&](size_t i) { return vhis[i]; };
  auto view_val = [&](size_t i) {
    const ConsumedView* v = views_[static_cast<size_t>(vps[i].first)];
    return v->keys[vpos[i]][vps[i].second];
  };

  if (rel.empty()) return;
  for (size_t i = 0; i < vps.size(); ++i) {
    if (vpos[i] >= view_hi(i)) return;
  }

  size_t match_index = 0;
  for (;;) {
    int64_t target = rel_col[rel_pos];
    bool exhausted = false;
    for (;;) {
      bool all_equal = true;
      if (rel_col[rel_pos] < target) {
        rel_pos = static_cast<size_t>(
            std::lower_bound(rel_col + rel_pos, rel_col + rel.hi, target) -
            rel_col);
        if (rel_pos >= rel.hi) {
          exhausted = true;
          break;
        }
      }
      if (rel_col[rel_pos] > target) {
        target = rel_col[rel_pos];
        all_equal = false;
      }
      for (size_t i = 0; i < vps.size(); ++i) {
        if (view_val(i) < target) {
          const ConsumedView* v = views_[static_cast<size_t>(vps[i].first)];
          const int comp = vps[i].second;
          size_t lo = vpos[i];
          size_t hi = view_hi(i);
          while (lo < hi) {
            const size_t mid = (lo + hi) / 2;
            if (v->keys[mid][comp] < target) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          vpos[i] = lo;
          if (vpos[i] >= view_hi(i)) {
            exhausted = true;
            break;
          }
        }
        if (view_val(i) > target) {
          target = view_val(i);
          all_equal = false;
        }
      }
      if (exhausted) break;
      if (all_equal && rel_col[rel_pos] == target) break;
    }
    if (exhausted) return;

    // Equal runs for each participant.
    const size_t rel_run_end = static_cast<size_t>(
        std::upper_bound(rel_col + rel_pos, rel_col + rel.hi, target) -
        rel_col);
    rel_range_[static_cast<size_t>(level)] = Range{rel_pos, rel_run_end};
    for (size_t i = 0; i < vps.size(); ++i) {
      const ConsumedView* v = views_[static_cast<size_t>(vps[i].first)];
      const int comp = vps[i].second;
      size_t lo = vpos[i];
      size_t hi = view_hi(i);
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (v->keys[mid][comp] <= target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      view_range_[static_cast<size_t>(vps[i].first)]
                 [static_cast<size_t>(level)] = Range{vpos[i], lo};
    }

    const bool mine =
        level > 1 || num_shards <= 1 ||
        (match_index % static_cast<size_t>(num_shards)) ==
            static_cast<size_t>(shard);
    if (mine) {
      ProcessMatch(level, target, shard, num_shards);
    }
    ++match_index;

    rel_pos = rel_range_[static_cast<size_t>(level)].hi;
    if (rel_pos >= rel.hi) return;
    for (size_t i = 0; i < vps.size(); ++i) {
      vpos[i] = view_range_[static_cast<size_t>(vps[i].first)]
                           [static_cast<size_t>(level)]
                               .hi;
      if (vpos[i] >= view_hi(i)) return;
    }
  }
}

void GroupExecutor::ProcessMatch(int level, int64_t value, int shard,
                                 int num_shards) {
  bound_[static_cast<size_t>(level)] = value;
  for (int v : level_bound_views_[static_cast<size_t>(level)]) {
    const Range& r =
        view_range_[static_cast<size_t>(v)][static_cast<size_t>(level)];
    view_payload_cache_[static_cast<size_t>(v)] =
        views_[static_cast<size_t>(v)]->payload(r.lo);
  }
  EvalAlphas(level);
  const int levels = plan_.num_levels();
  if (level == levels) {
    for (double& v : leaf_vals_) v = 0.0;
    LeafLoop(rel_range_[static_cast<size_t>(level)]);
  } else {
    for (int b : plan_.betas_at_level[static_cast<size_t>(level + 1)]) {
      beta_vals_[static_cast<size_t>(b)] = 0.0;
    }
    IterateLevel(level + 1, shard, num_shards);
  }
  AccumulateBetas(level);
  WriteOutputs(level);
}

void GroupExecutor::LeafLoop(const Range& range) {
  for (size_t row = range.lo; row < range.hi; ++row) {
    for (size_t s = 0; s < leaf_factors_.size(); ++s) {
      double prod = 1.0;
      for (const ResolvedFactor& rf : leaf_factors_[s]) {
        const double x = rf.icol != nullptr
                             ? static_cast<double>(rf.icol[row])
                             : rf.dcol[row];
        prod *= rf.fn.Eval(x);
      }
      leaf_vals_[s] += prod;
    }
    for (size_t w = 0; w < plan_.leaf_writes.size(); ++w) {
      EmitLeafWrite(w, row);
    }
  }
}

GroupExecutor::Range GroupExecutor::ViewRangeAt(int view_index,
                                                int level) const {
  const int effective =
      effective_level_[static_cast<size_t>(view_index)]
                      [static_cast<size_t>(level)];
  return view_range_[static_cast<size_t>(view_index)]
                    [static_cast<size_t>(effective)];
}

double GroupExecutor::EvalPart(const PlanPart& part) const {
  switch (part.kind) {
    case PlanPart::Kind::kFactor:
      return part.factor.fn.Eval(
          static_cast<double>(bound_[static_cast<size_t>(part.level)]));
    case PlanPart::Kind::kViewPayload:
      return view_payload_cache_[static_cast<size_t>(part.view_index)]
                                [part.slot];
    case PlanPart::Kind::kViewRangeSum: {
      const Range r = ViewRangeAt(part.view_index, part.level);
      const ConsumedView* v = views_[static_cast<size_t>(part.view_index)];
      double sum = 0.0;
      for (size_t i = r.lo; i < r.hi; ++i) sum += v->payload(i)[part.slot];
      return sum;
    }
  }
  return 1.0;
}

double GroupExecutor::SuffixValue(const GroupPlan::Suffix& suffix) const {
  switch (suffix.kind) {
    case GroupPlan::SuffixKind::kOne:
      return 1.0;
    case GroupPlan::SuffixKind::kLeaf:
      return leaf_vals_[static_cast<size_t>(suffix.index)];
    case GroupPlan::SuffixKind::kBeta:
      return beta_vals_[static_cast<size_t>(suffix.index)];
  }
  return 1.0;
}

void GroupExecutor::EvalAlphas(int level) {
  for (int a : plan_.alphas_at_level[static_cast<size_t>(level)]) {
    const GroupPlan::AlphaReg& reg = plan_.alphas[static_cast<size_t>(a)];
    double v =
        reg.prev >= 0 ? alpha_vals_[static_cast<size_t>(reg.prev)] : 1.0;
    for (const PlanPart& p : reg.parts) v *= EvalPart(p);
    alpha_vals_[static_cast<size_t>(a)] = v;
  }
}

void GroupExecutor::AccumulateBetas(int level) {
  for (int b : plan_.betas_at_level[static_cast<size_t>(level)]) {
    const GroupPlan::BetaReg& reg = plan_.betas[static_cast<size_t>(b)];
    double v = SuffixValue(reg.next);
    for (const PlanPart& p : reg.parts) v *= EvalPart(p);
    beta_vals_[static_cast<size_t>(b)] += v;
  }
}

void GroupExecutor::EmitWrite(const GroupPlan::Write& w, int level) {
  const GroupPlan::OutputInfo& o =
      plan_.outputs[static_cast<size_t>(w.output)];
  double base = w.alpha >= 0 ? alpha_vals_[static_cast<size_t>(w.alpha)] : 1.0;
  base *= SuffixValue(w.suffix);

  TupleKey key(static_cast<int>(o.key_sources.size()));
  // Fill level-sourced components once.
  for (size_t i = 0; i < o.key_sources.size(); ++i) {
    const GroupPlan::KeySource& src = o.key_sources[i];
    if (src.from_level) {
      key.set(static_cast<int>(i), bound_[static_cast<size_t>(src.level)]);
    }
  }
  if (o.key_views.empty()) {
    outputs_[static_cast<size_t>(w.output)]->Upsert(key)[w.slot] += base;
    return;
  }
  // Iterate the cross product of the key views' entry ranges.
  const size_t nv = o.key_views.size();
  if (entry_cursor_.size() < nv) {
    entry_cursor_.resize(nv);
    write_ranges_.resize(nv);
  }
  for (size_t i = 0; i < nv; ++i) {
    write_ranges_[i] = ViewRangeAt(o.key_views[i], level);
    if (write_ranges_[i].empty()) return;
    entry_cursor_[i] = write_ranges_[i].lo;
  }
  for (;;) {
    double value = base;
    for (size_t i = 0; i < nv; ++i) {
      value *= views_[static_cast<size_t>(o.key_views[i])]
                   ->payload(entry_cursor_[i])[w.entry_slots[i]];
    }
    for (size_t i = 0; i < o.key_sources.size(); ++i) {
      const GroupPlan::KeySource& src = o.key_sources[i];
      if (src.from_level) continue;
      // Locate the cursor of this source's view.
      for (size_t kv = 0; kv < nv; ++kv) {
        if (o.key_views[kv] == src.view_index) {
          key.set(static_cast<int>(i),
                  views_[static_cast<size_t>(src.view_index)]
                      ->keys[entry_cursor_[kv]][src.comp]);
          break;
        }
      }
    }
    outputs_[static_cast<size_t>(w.output)]->Upsert(key)[w.slot] += value;
    // Advance the odometer.
    size_t i = 0;
    for (; i < nv; ++i) {
      if (++entry_cursor_[i] < write_ranges_[i].hi) break;
      entry_cursor_[i] = write_ranges_[i].lo;
    }
    if (i == nv) break;
  }
}

void GroupExecutor::WriteOutputs(int level) {
  // Writes for the same output are consecutive (the plan lowers slots in
  // order); outputs without key views share one key probe per match.
  int last_output = -1;
  double* payload = nullptr;
  for (const GroupPlan::Write& w :
       plan_.writes_at_level[static_cast<size_t>(level)]) {
    const GroupPlan::OutputInfo& o =
        plan_.outputs[static_cast<size_t>(w.output)];
    if (!o.key_views.empty()) {
      EmitWrite(w, level);
      continue;
    }
    if (w.output != last_output) {
      TupleKey key(static_cast<int>(o.key_sources.size()));
      for (size_t i = 0; i < o.key_sources.size(); ++i) {
        key.set(static_cast<int>(i),
                bound_[static_cast<size_t>(o.key_sources[i].level)]);
      }
      payload = outputs_[static_cast<size_t>(w.output)]->Upsert(key);
      last_output = w.output;
    }
    double v = w.alpha >= 0 ? alpha_vals_[static_cast<size_t>(w.alpha)] : 1.0;
    v *= SuffixValue(w.suffix);
    payload[w.slot] += v;
  }
}

void GroupExecutor::EmitLeafWrite(size_t leaf_write_index, size_t row) {
  const GroupPlan::LeafWrite& lw = plan_.leaf_writes[leaf_write_index];
  const GroupPlan::OutputInfo& o =
      plan_.outputs[static_cast<size_t>(lw.output)];
  const int levels = plan_.num_levels();
  double base = 1.0;
  for (const PlanPart& p : lw.parts) base *= EvalPart(p);
  for (const ResolvedFactor& rf : leaf_write_factors_[leaf_write_index]) {
    const double x =
        rf.icol != nullptr ? static_cast<double>(rf.icol[row]) : rf.dcol[row];
    base *= rf.fn.Eval(x);
  }
  TupleKey key(static_cast<int>(o.key_sources.size()));
  for (size_t i = 0; i < o.key_sources.size(); ++i) {
    const GroupPlan::KeySource& src = o.key_sources[i];
    if (src.from_level) {
      key.set(static_cast<int>(i), bound_[static_cast<size_t>(src.level)]);
    }
  }
  if (o.key_views.empty()) {
    outputs_[static_cast<size_t>(lw.output)]->Upsert(key)[lw.slot] += base;
    return;
  }
  const size_t nv = o.key_views.size();
  if (entry_cursor_.size() < nv) {
    entry_cursor_.resize(nv);
    write_ranges_.resize(nv);
  }
  for (size_t i = 0; i < nv; ++i) {
    write_ranges_[i] = ViewRangeAt(o.key_views[i], levels);
    if (write_ranges_[i].empty()) return;
    entry_cursor_[i] = write_ranges_[i].lo;
  }
  for (;;) {
    double value = base;
    for (size_t i = 0; i < nv; ++i) {
      value *= views_[static_cast<size_t>(o.key_views[i])]
                   ->payload(entry_cursor_[i])[lw.entry_slots[i]];
    }
    for (size_t i = 0; i < o.key_sources.size(); ++i) {
      const GroupPlan::KeySource& src = o.key_sources[i];
      if (src.from_level) continue;
      for (size_t kv = 0; kv < nv; ++kv) {
        if (o.key_views[kv] == src.view_index) {
          key.set(static_cast<int>(i),
                  views_[static_cast<size_t>(src.view_index)]
                      ->keys[entry_cursor_[kv]][src.comp]);
          break;
        }
      }
    }
    outputs_[static_cast<size_t>(lw.output)]->Upsert(key)[lw.slot] += value;
    size_t i = 0;
    for (; i < nv; ++i) {
      if (++entry_cursor_[i] < write_ranges_[i].hi) break;
      entry_cursor_[i] = write_ranges_[i].lo;
    }
    if (i == nv) break;
  }
}

}  // namespace lmfao
