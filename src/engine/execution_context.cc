#include "engine/execution_context.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "engine/executor.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/timer.h"

namespace lmfao {

namespace {

/// Occupies `amount` slots of a busy-thread counter for the current scope.
class BusyScope {
 public:
  BusyScope(std::atomic<int>* counter, int amount)
      : counter_(counter), amount_(amount) {
    counter_->fetch_add(amount_);
  }
  ~BusyScope() { counter_->fetch_sub(amount_); }
  BusyScope(const BusyScope&) = delete;
  BusyScope& operator=(const BusyScope&) = delete;

 private:
  std::atomic<int>* counter_;
  int amount_;
};

/// Releases the acquired incoming views on scope exit (including error
/// returns, so a failed group never strands refcounts in the store).
class AcquiredViews {
 public:
  explicit AcquiredViews(ViewStore* store) : store_(store) {}
  ~AcquiredViews() { ReleaseAll(); }
  AcquiredViews(const AcquiredViews&) = delete;
  AcquiredViews& operator=(const AcquiredViews&) = delete;

  void Add(ViewId view) { views_.push_back(view); }
  void ReleaseAll() {
    for (ViewId v : views_) store_->Release(v);
    views_.clear();
  }

 private:
  ViewStore* store_;
  std::vector<ViewId> views_;
};

/// Host side of the JIT output callback: resolves (output, key) to the
/// payload row of the right ViewMap, hashing exactly like the interpreter's
/// write path so native and interpreted executions build identical maps.
struct JitUpsertCtx {
  const std::vector<ViewMap*>* outputs = nullptr;
  const int* arities = nullptr;  ///< Key arity per output.
};

double* JitUpsert(void* ctx, int32_t output, const int64_t* key) {
  static const int64_t kNoKey[1] = {0};
  const auto* c = static_cast<const JitUpsertCtx*>(ctx);
  const int n = c->arities[output];
  const int64_t* k = key != nullptr ? key : kNoKey;
  return (*c->outputs)[static_cast<size_t>(output)]->UpsertHashed(
      k, HashKeySpan(k, n));
}

}  // namespace

ExecutionContext::ExecutionContext(const Workload& workload,
                                   const GroupedWorkload& grouped,
                                   const std::vector<GroupPlan>& plans,
                                   const SchedulerOptions& options,
                                   SortedRelationProvider sorted_relation,
                                   const ParamPack* params,
                                   ExecBackend backend,
                                   const CancelToken* cancel)
    : workload_(workload),
      grouped_(grouped),
      plans_(plans),
      options_(options),
      sorted_relation_(std::move(sorted_relation)),
      params_(params),
      backend_(backend),
      cancel_(cancel != nullptr && cancel->armed() ? cancel : nullptr) {
  LMFAO_CHECK_EQ(grouped_.groups.size(), plans_.size());
}

Status ExecutionContext::Run(ExecutionStats* stats) {
  // Register every view: consumer refcounts from the plans' incoming
  // lists, materialized form from the plan-layer freeze decision, query
  // outputs pinned until TakeQueryResult.
  std::vector<int> consumers(workload_.views.size(), 0);
  std::vector<ViewForm> forms(workload_.views.size(), ViewForm::kHashMap);
  std::vector<PayloadLayout> layouts(workload_.views.size(),
                                     PayloadLayout::kColumnar);
  for (const GroupPlan& plan : plans_) {
    for (const GroupPlan::IncomingView& in : plan.incoming) {
      ++consumers[static_cast<size_t>(in.view)];
    }
    for (const GroupPlan::OutputInfo& out : plan.outputs) {
      forms[static_cast<size_t>(out.view)] = out.form;
      layouts[static_cast<size_t>(out.view)] = out.payload_layout;
    }
  }
  for (size_t v = 0; v < workload_.views.size(); ++v) {
    LMFAO_FAILPOINT("viewstore.register");
    store_.Register(static_cast<ViewId>(v), consumers[v], forms[v],
                    workload_.views[v].IsQueryOutput(), layouts[v]);
  }

  const int threads = options_.ResolvedThreads();
  if (threads > 1 && (options_.task_parallel || options_.domain_parallel)) {
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
  }

  stats->groups.assign(grouped_.groups.size(), GroupStats{});
  ThreadPool* task_pool = options_.task_parallel ? pool_.get() : nullptr;
  Status sched = ScheduleGroupsTimed(
      grouped_, task_pool,
      [&](int gid, const GroupStart& start) {
        return RunGroup(gid, start,
                        &stats->groups[static_cast<size_t>(gid)]);
      });
  stats->limit_trips = limit_trips_.load();
  for (const GroupStats& gs : stats->groups) {
    if (gs.degraded) ++stats->degraded_groups;
  }
  if (!sched.ok()) {
    // A cut-short pass yields no ExecutionStats to the caller (StatusOr
    // carries only the Status), so the progress rides in the message.
    if (sched.code() == StatusCode::kDeadlineExceeded ||
        sched.code() == StatusCode::kResourceExhausted) {
      sched = Status(sched.code(),
                     sched.message() + " (after " +
                         std::to_string(groups_completed_.load()) + "/" +
                         std::to_string(grouped_.groups.size()) +
                         " groups completed)");
    }
    return sched;
  }
  for (const GroupStats& gs : stats->groups) {
    if (std::strcmp(gs.backend, "jit") == 0) {
      ++stats->groups_jit;
    } else if (std::strcmp(gs.backend, "simd") == 0) {
      ++stats->groups_simd;
    } else {
      ++stats->groups_interp;
    }
  }
  stats->DeriveBackend();
  stats->peak_live_views = store_.peak_live_views();
  stats->peak_view_bytes = store_.peak_bytes();
  stats->peak_view_key_bytes = store_.peak_key_bytes();
  stats->peak_view_payload_bytes = store_.peak_payload_bytes();
  stats->num_frozen_views = store_.num_frozen();
  return Status::OK();
}

Status ExecutionContext::RunGroup(int gid, const GroupStart& start,
                                  GroupStats* gs) {
  Timer group_timer;
  BusyScope self(&busy_threads_, 1);
  // Group boundary: the cheap coarse-grained governance point every group
  // passes through regardless of backend (the JIT tier is not polled
  // mid-scan, so this is its trip granularity).
  if (cancel_ != nullptr) {
    LMFAO_RETURN_NOT_OK(cancel_->Check(store_.current_bytes()));
  }
  const ViewGroup& group = grouped_.groups[static_cast<size_t>(gid)];
  const GroupPlan& plan = plans_[static_cast<size_t>(gid)];
  LMFAO_ASSIGN_OR_RETURN(const Relation* rel,
                         sorted_relation_(group.node, plan.attr_order));

  // Consumed forms of the incoming views: identity-order consumers borrow
  // the frozen sorted array with no copy; everything else builds a
  // permuted copy from whichever form the store holds.
  AcquiredViews acquired(&store_);
  std::vector<ConsumedView> consumed;
  consumed.reserve(plan.incoming.size());
  std::vector<const ConsumedView*> consumed_ptrs;
  consumed_ptrs.reserve(plan.incoming.size());
  for (const GroupPlan::IncomingView& in : plan.incoming) {
    LMFAO_ASSIGN_OR_RETURN(ViewStore::ViewRef ref, store_.Acquire(in.view));
    acquired.Add(in.view);
    if (ref.frozen != nullptr) {
      consumed.push_back(in.identity_perm
                             ? ConsumedView::Borrow(*ref.frozen)
                             : BuildConsumedView(*ref.frozen, in));
    } else {
      consumed.push_back(BuildConsumedView(*ref.map, in));
    }
  }
  for (const ConsumedView& cv : consumed) consumed_ptrs.push_back(&cv);

  // Output maps, preallocated from the plan's cardinality estimates.
  auto make_output_maps = [&](size_t estimate_divisor,
                              std::vector<std::unique_ptr<ViewMap>>* maps,
                              std::vector<ViewMap*>* ptrs) {
    for (const GroupPlan::OutputInfo& out : plan.outputs) {
      const ViewInfo& info = workload_.view(out.view);
      maps->push_back(std::make_unique<ViewMap>(
          static_cast<int>(info.key.size()), out.width));
      if (out.estimated_entries > 0) {
        maps->back()->Reserve(out.estimated_entries / estimate_divisor + 1);
      }
      ptrs->push_back(maps->back().get());
    }
  };
  // Backend selection, per group: a ready native function wins; a module
  // still compiling (async), failed, or rejecting this group's shape
  // degrades just this group to the interpreter tiers.
  const JitGroupFn jit_fn =
      backend_.jit != nullptr ? backend_.jit->GetFn(gid) : nullptr;
  const RuntimeGroupMeta* jit_meta =
      jit_fn != nullptr ? backend_.jit->GetMeta(gid) : nullptr;
  std::vector<const void*> jit_rel_cols;
  std::vector<LmfaoJitView> jit_views;
  std::vector<double> jit_params;
  std::vector<int> jit_arities;
  bool use_jit = jit_fn != nullptr && jit_meta != nullptr;
  // The emitted range-sum helper reduces payload runs contiguously, which
  // requires multi-entry views in columnar layout (entry stride 1); any
  // other layout sends the group to the interpreter tiers.
  for (size_t v = 0; use_jit && v < consumed.size(); ++v) {
    if (plan.incoming[v].IsMultiEntry() &&
        consumed[v].payload_entry_stride != 1) {
      use_jit = false;
    }
  }
  if (use_jit) {
    jit_views.reserve(consumed.size());
    for (const ConsumedView& cv : consumed) {
      LmfaoJitView jv;
      jv.size = cv.size;
      for (int c = 0; c < cv.arity; ++c) jv.keys[c] = cv.col(c);
      jv.payload = cv.payload_base;
      jv.entry_stride = cv.payload_entry_stride;
      jv.slot_stride = cv.payload_slot_stride;
      jit_views.push_back(jv);
    }
    jit_rel_cols.reserve(jit_meta->used_cols.size());
    for (int col : jit_meta->used_cols) {
      const Column& c = rel->column(col);
      jit_rel_cols.push_back(c.type() == AttrType::kInt
                                 ? static_cast<const void*>(c.ints().data())
                                 : static_cast<const void*>(
                                       c.doubles().data()));
    }
    jit_params.reserve(jit_meta->param_order.size());
    for (ParamId p : jit_meta->param_order) {
      jit_params.push_back(params_ != nullptr ? params_->Get(p) : 0.0);
    }
    for (const GroupPlan::OutputInfo& out : plan.outputs) {
      jit_arities.push_back(static_cast<int>(out.key_sources.size()));
    }
  }
  if (backend_.jit != nullptr && !use_jit) gs->degraded = true;
  // Baseline the budget charge at the store's live bytes as of this
  // group's start; the executor adds its in-flight output maps on top.
  const size_t charge_base = store_.current_bytes();
  // One shard of the group's scan, on whichever backend was chosen (the
  // emitted code shards by the same level-1 match_index % num_shards rule
  // as GroupExecutor::ExecuteShard, so the two tile the domain alike).
  auto run_shard_inner = [&](const std::vector<ViewMap*>& ptrs, int shard,
                             int num_shards) -> Status {
    if (use_jit) {
      JitUpsertCtx uctx;
      uctx.outputs = &ptrs;
      uctx.arities = jit_arities.data();
      LmfaoJitInput input;
      input.rel_rows = rel->num_rows();
      input.rel_cols = jit_rel_cols.data();
      input.views = jit_views.data();
      input.params = jit_params.data();
      input.shard = shard;
      input.num_shards = num_shards;
      LmfaoJitOutput output;
      output.ctx = &uctx;
      output.upsert = &JitUpsert;
      jit_fn(&input, &output);
      return Status::OK();
    }
    GroupExecutor executor(plan, *rel, consumed_ptrs, params_,
                           backend_.simd, cancel_, charge_base);
    return num_shards <= 1 ? executor.Execute(ptrs)
                           : executor.ExecuteShard(ptrs, shard, num_shards);
  };
  // Wrapper collecting any failure a void seam (ViewMap growth) parked on
  // this thread during the scan — parks are thread-local, so they must be
  // harvested before the shard result crosses threads.
  auto run_shard = [&](const std::vector<ViewMap*>& ptrs, int shard,
                       int num_shards) -> Status {
    Status st = run_shard_inner(ptrs, shard, num_shards);
    if (Failpoints::enabled()) {
      Status parked = Failpoints::TakeParked();
      if (st.ok() && !parked.ok()) st = std::move(parked);
    }
    return st;
  };

  // Shard count from true pool occupancy: busy_threads_ counts group
  // runners plus active shard helpers (the scheduler alone only sees whole
  // groups, so a fully sharded pool would look idle to it).
  const int free_threads =
      std::max(0, options_.ResolvedThreads() - busy_threads_.load());
  int shards =
      plan.num_levels() == 0
          ? 1
          : ChooseShardCount(static_cast<int64_t>(rel->num_rows()), options_,
                             free_threads);
  std::vector<std::unique_ptr<ViewMap>> out_maps;
  std::vector<ViewMap*> out_ptrs;
  // Scan + merge at the given shard count, filling out_maps/out_ptrs.
  auto scan_all = [&](int num_shards) -> Status {
    out_maps.clear();
    out_ptrs.clear();
    if (num_shards <= 1) {
      make_output_maps(1, &out_maps, &out_ptrs);
      LMFAO_RETURN_NOT_OK(run_shard(out_ptrs, 0, 1));
    } else {
      // Domain parallelism: each shard fills private maps. The merge
      // targets are only built afterwards so their reservations do not
      // overlap with the shard maps' during the scan.
      std::vector<std::vector<std::unique_ptr<ViewMap>>> shard_maps(
          static_cast<size_t>(num_shards));
      std::vector<std::vector<ViewMap*>> shard_ptrs(
          static_cast<size_t>(num_shards));
      std::vector<Status> shard_status(static_cast<size_t>(num_shards));
      {
        BusyScope helpers(&busy_threads_, num_shards - 1);
        ParallelForShared(
            pool_.get(), static_cast<size_t>(num_shards), [&](size_t s) {
              make_output_maps(static_cast<size_t>(num_shards),
                               &shard_maps[s], &shard_ptrs[s]);
              shard_status[s] =
                  run_shard(shard_ptrs[s], static_cast<int>(s), num_shards);
            });
      }
      for (const Status& st : shard_status) LMFAO_RETURN_NOT_OK(st);
      make_output_maps(1, &out_maps, &out_ptrs);
      for (int s = 0; s < num_shards; ++s) {
        for (size_t o = 0; o < out_ptrs.size(); ++o) {
          out_ptrs[o]->MergeAdd(*shard_maps[static_cast<size_t>(s)][o]);
        }
      }
    }
    // Harvest parks from the merge-map builds and MergeAdd rehashes (this
    // thread); the shard scans harvested their own inside run_shard.
    if (Failpoints::enabled()) {
      LMFAO_RETURN_NOT_OK(Failpoints::TakeParked());
    }
    return Status::OK();
  };

  Status scan_st = scan_all(shards);
  if (!scan_st.ok() && (scan_st.code() == StatusCode::kResourceExhausted ||
                        scan_st.code() == StatusCode::kDeadlineExceeded)) {
    limit_trips_.fetch_add(1);
  }
  if (scan_st.code() == StatusCode::kResourceExhausted && shards > 1 &&
      (cancel_ == nullptr || !cancel_->cancelled())) {
    // Graceful degradation: an out-of-memory trip on a domain-sharded scan
    // is retried once unsharded — the dropped per-shard private maps are
    // the memory multiplier the narrow execution avoids. This must happen
    // while the consumed views are still acquired (a Release below may
    // evict an input this retry needs). Budget trips are not sticky on the
    // token, so the retry's own Checks start clean.
    gs->degraded = true;
    shards = 1;
    scan_st = scan_all(1);
    if (!scan_st.ok() && (scan_st.code() == StatusCode::kResourceExhausted ||
                          scan_st.code() == StatusCode::kDeadlineExceeded)) {
      limit_trips_.fetch_add(1);
    }
  }
  LMFAO_RETURN_NOT_OK(scan_st);

  // Release the consumed views *before* publishing: the scan is done, so
  // any input whose last consumer this group was evicts now instead of
  // coexisting with the freshly produced outputs — the input and output
  // frontiers of a group never overlap in the store.
  acquired.ReleaseAll();
  size_t entries = 0;
  for (size_t o = 0; o < plan.outputs.size(); ++o) {
    entries += out_maps[o]->size();
    LMFAO_RETURN_NOT_OK(
        store_.Publish(plan.outputs[o].view, std::move(out_maps[o])));
  }
  // Freeze sorts and ShrinkToFit rehashes run inside Publish with no
  // park-collection point of their own.
  if (Failpoints::enabled()) {
    LMFAO_RETURN_NOT_OK(Failpoints::TakeParked());
  }
  // Publish boundary: precise charge now that outputs are accounted and
  // dead inputs evicted.
  if (cancel_ != nullptr) {
    Status st = cancel_->Check(store_.current_bytes());
    if (!st.ok()) {
      if (st.code() == StatusCode::kResourceExhausted ||
          st.code() == StatusCode::kDeadlineExceeded) {
        limit_trips_.fetch_add(1);
      }
      return st;
    }
  }

  groups_completed_.fetch_add(1);
  gs->group_id = gid;
  gs->node = group.node;
  gs->num_outputs = static_cast<int>(group.outputs.size());
  gs->seconds = group_timer.ElapsedSeconds();
  gs->output_entries = entries;
  gs->shards = shards;
  gs->wait_seconds = start.wait_seconds;
  gs->backend = use_jit ? "jit" : backend_.simd ? "simd" : "interp";
  gs->store_key_bytes = store_.current_key_bytes();
  gs->store_payload_bytes = store_.current_payload_bytes();
  return Status::OK();
}

StatusOr<ViewMap> ExecutionContext::TakeQueryResult(ViewId view) {
  return store_.TakeResult(view);
}

}  // namespace lmfao
