#include "query/function.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace lmfao {

Function Function::Identity() {
  return Function(FunctionKind::kIdentity, 0.0, nullptr);
}

Function Function::Square() {
  return Function(FunctionKind::kSquare, 0.0, nullptr);
}

Function Function::Dictionary(std::shared_ptr<const FunctionDict> dict) {
  LMFAO_CHECK(dict != nullptr);
  return Function(FunctionKind::kDictionary, 0.0, std::move(dict));
}

Function Function::Indicator(FunctionKind op, double threshold) {
  LMFAO_CHECK(op == FunctionKind::kIndicatorLe || op == FunctionKind::kIndicatorLt ||
              op == FunctionKind::kIndicatorGe || op == FunctionKind::kIndicatorGt ||
              op == FunctionKind::kIndicatorEq || op == FunctionKind::kIndicatorNe);
  return Function(op, threshold, nullptr);
}

Function Function::IndicatorParam(FunctionKind op, ParamId param) {
  LMFAO_CHECK(op == FunctionKind::kIndicatorLe || op == FunctionKind::kIndicatorLt ||
              op == FunctionKind::kIndicatorGe || op == FunctionKind::kIndicatorGt ||
              op == FunctionKind::kIndicatorEq || op == FunctionKind::kIndicatorNe);
  LMFAO_CHECK_GE(param, 0);
  // The stored threshold of an unbound slot is NaN so an accidental
  // unresolved evaluation can never masquerade as a real indicator.
  return Function(op, std::numeric_limits<double>::quiet_NaN(), nullptr,
                  param);
}

Function Function::Resolve(const ParamPack& params) const {
  if (param_ == kNoParam) return *this;
  return Function(kind_, ResolvedThreshold(&params), dict_);
}

double Function::Eval(double x) const {
  LMFAO_CHECK(param_ == kNoParam)
      << "Eval on parameterized function; Resolve() it first";
  switch (kind_) {
    case FunctionKind::kIdentity:
      return x;
    case FunctionKind::kSquare:
      return x * x;
    case FunctionKind::kDictionary: {
      const auto it = dict_->table.find(static_cast<int64_t>(std::llround(x)));
      return it == dict_->table.end() ? dict_->default_value : it->second;
    }
    case FunctionKind::kIndicatorLe:
      return x <= threshold_ ? 1.0 : 0.0;
    case FunctionKind::kIndicatorLt:
      return x < threshold_ ? 1.0 : 0.0;
    case FunctionKind::kIndicatorGe:
      return x >= threshold_ ? 1.0 : 0.0;
    case FunctionKind::kIndicatorGt:
      return x > threshold_ ? 1.0 : 0.0;
    case FunctionKind::kIndicatorEq:
      return x == threshold_ ? 1.0 : 0.0;
    case FunctionKind::kIndicatorNe:
      return x != threshold_ ? 1.0 : 0.0;
  }
  return 0.0;
}

bool Function::operator==(const Function& o) const {
  if (kind_ != o.kind_) return false;
  if (param_ != o.param_) return false;
  if (kind_ == FunctionKind::kDictionary) return dict_ == o.dict_;
  // Parameterized functions are equal by slot alone (their stored
  // thresholds are NaN placeholders).
  if (param_ != kNoParam) return true;
  return threshold_ == o.threshold_;
}

uint64_t Function::Signature() const {
  uint64_t h = Mix64(static_cast<uint64_t>(kind_) + 0x51ed2701);
  if (kind_ == FunctionKind::kDictionary) {
    h = HashCombine(h, reinterpret_cast<uintptr_t>(dict_.get()));
  } else if (param_ != kNoParam) {
    // Slot identity, distinctly salted so p0 never collides with a
    // literal threshold of 0.
    h = HashCombine(h, Mix64(static_cast<uint64_t>(param_) + 0x9e3779b9));
  } else {
    uint64_t bits;
    std::memcpy(&bits, &threshold_, sizeof(bits));
    h = HashCombine(h, bits);
  }
  return h;
}

bool Function::IsIndicator() const {
  switch (kind_) {
    case FunctionKind::kIndicatorLe:
    case FunctionKind::kIndicatorLt:
    case FunctionKind::kIndicatorGe:
    case FunctionKind::kIndicatorGt:
    case FunctionKind::kIndicatorEq:
    case FunctionKind::kIndicatorNe:
      return true;
    default:
      return false;
  }
}

namespace {
const char* IndicatorOp(FunctionKind kind) {
  switch (kind) {
    case FunctionKind::kIndicatorLe:
      return "<=";
    case FunctionKind::kIndicatorLt:
      return "<";
    case FunctionKind::kIndicatorGe:
      return ">=";
    case FunctionKind::kIndicatorGt:
      return ">";
    case FunctionKind::kIndicatorEq:
      return "==";
    case FunctionKind::kIndicatorNe:
      return "!=";
    default:
      return "?";
  }
}
}  // namespace

std::string Function::ToString() const {
  switch (kind_) {
    case FunctionKind::kIdentity:
      return "id";
    case FunctionKind::kSquare:
      return "sq";
    case FunctionKind::kDictionary:
      return dict_->name + "[·]";
    default: {
      std::ostringstream out;
      out << "(x" << IndicatorOp(kind_);
      if (param_ != kNoParam) {
        out << "?p" << param_;
      } else {
        out << threshold_;
      }
      out << ")";
      return out.str();
    }
  }
}

std::string Function::CodegenExpr(const std::string& arg) const {
  LMFAO_CHECK(param_ == kNoParam)
      << "codegen requires resolved functions; Resolve() the batch first";
  switch (kind_) {
    case FunctionKind::kIdentity:
      return arg;
    case FunctionKind::kSquare:
      return "(" + arg + " * " + arg + ")";
    case FunctionKind::kDictionary:
      return "dict_" + dict_->name + "(" + arg + ")";
    default:
      return StringPrintf("((%s %s %.17g) ? 1.0 : 0.0)", arg.c_str(),
                          IndicatorOp(kind_), threshold_);
  }
}

}  // namespace lmfao
