#include "query/query.h"

#include <sstream>

namespace lmfao {

std::vector<AttrId> Query::ReferencedAttributes() const {
  std::vector<AttrId> out = group_by;
  for (const Aggregate& agg : aggregates) {
    for (const Factor& f : agg.factors()) out.push_back(f.attr);
  }
  return SortedUnique(std::move(out));
}

std::string Query::ToString(const Catalog* catalog) const {
  std::vector<std::string> names;
  if (catalog != nullptr) {
    names.reserve(static_cast<size_t>(catalog->num_attrs()));
    for (AttrId a = 0; a < catalog->num_attrs(); ++a) {
      names.push_back(catalog->attr(a).name);
    }
  }
  auto attr_name = [&](AttrId a) {
    return names.empty() ? "X" + std::to_string(a)
                         : names[static_cast<size_t>(a)];
  };
  std::ostringstream out;
  out << "SELECT ";
  for (size_t i = 0; i < group_by.size(); ++i) {
    out << attr_name(group_by[i]) << ", ";
  }
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (i > 0) out << ", ";
    out << aggregates[i].ToString(names.empty() ? nullptr : &names);
  }
  out << " FROM D";
  if (!group_by.empty()) {
    out << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out << ", ";
      out << attr_name(group_by[i]);
    }
  }
  return out.str();
}

QueryId QueryBatch::Add(Query query) {
  query.id = static_cast<QueryId>(queries_.size());
  query.group_by = SortedUnique(std::move(query.group_by));
  queries_.push_back(std::move(query));
  return queries_.back().id;
}

int QueryBatch::TotalAggregates() const {
  int total = 0;
  for (const Query& q : queries_) {
    total += static_cast<int>(q.aggregates.size());
  }
  return total;
}

std::vector<ParamId> QueryBatch::RequiredParams() const {
  std::vector<ParamId> params;
  for (const Query& q : queries_) {
    for (const Aggregate& agg : q.aggregates) agg.CollectParams(&params);
  }
  return SortedUnique(std::move(params));
}

StatusOr<QueryBatch> QueryBatch::Bind(const ParamPack& params) const {
  for (ParamId p : RequiredParams()) {
    if (!params.Has(p)) {
      return Status::InvalidArgument("unbound parameter p" +
                                     std::to_string(p));
    }
  }
  QueryBatch bound;
  for (const Query& q : queries_) {
    Query copy = q;
    copy.aggregates.clear();
    for (const Aggregate& agg : q.aggregates) {
      copy.aggregates.push_back(agg.Bind(params));
    }
    bound.Add(std::move(copy));
  }
  return bound;
}

Status QueryBatch::Validate(const Catalog& catalog) const {
  // An attribute is coverable iff it occurs in at least one relation.
  std::vector<bool> covered(static_cast<size_t>(catalog.num_attrs()), false);
  for (RelationId r = 0; r < catalog.num_relations(); ++r) {
    for (AttrId a : catalog.relation(r).schema().attrs()) {
      covered[static_cast<size_t>(a)] = true;
    }
  }
  for (const Query& q : queries_) {
    if (q.aggregates.empty()) {
      return Status::InvalidArgument("query " + q.name +
                                     " has no aggregates");
    }
    for (AttrId a : q.ReferencedAttributes()) {
      if (a < 0 || a >= catalog.num_attrs()) {
        return Status::InvalidArgument("query " + q.name +
                                       " references unknown attribute id " +
                                       std::to_string(a));
      }
      if (!covered[static_cast<size_t>(a)]) {
        return Status::InvalidArgument(
            "query " + q.name + " references attribute " +
            catalog.attr(a).name + " that occurs in no relation");
      }
    }
    for (AttrId a : q.group_by) {
      if (catalog.attr(a).type != AttrType::kInt) {
        return Status::InvalidArgument("group-by attribute " +
                                       catalog.attr(a).name +
                                       " must be int-typed");
      }
    }
    if (static_cast<int>(q.group_by.size()) > TupleKey::kMaxArity) {
      return Status::InvalidArgument(
          "query " + q.name + " groups by more than " +
          std::to_string(TupleKey::kMaxArity) + " attributes");
    }
  }
  return Status::OK();
}

double QueryResult::TotalOf(int agg_index) const {
  double total = 0.0;
  data.ForEach([&](const TupleKey&, const double* payload) {
    total += payload[agg_index];
  });
  return total;
}

}  // namespace lmfao
