#include "query/aggregate.h"

#include <algorithm>
#include <sstream>

#include "util/hash.h"

namespace lmfao {

uint64_t Factor::Signature() const {
  return HashCombine(Mix64(static_cast<uint64_t>(attr) + 0x7ad3),
                     fn.Signature());
}

namespace {
void SortFactors(std::vector<Factor>* factors) {
  std::sort(factors->begin(), factors->end(),
            [](const Factor& a, const Factor& b) {
              if (a.attr != b.attr) return a.attr < b.attr;
              return a.fn.Signature() < b.fn.Signature();
            });
}
}  // namespace

Aggregate::Aggregate(std::vector<Factor> factors)
    : factors_(std::move(factors)) {
  SortFactors(&factors_);
}

Aggregate Aggregate::Count() { return Aggregate(); }

Aggregate Aggregate::Sum(AttrId attr) {
  return Aggregate({Factor{attr, Function::Identity()}});
}

Aggregate Aggregate::SumSquare(AttrId attr) {
  return Aggregate({Factor{attr, Function::Square()}});
}

Aggregate Aggregate::SumProduct(AttrId a, AttrId b) {
  return Aggregate(
      {Factor{a, Function::Identity()}, Factor{b, Function::Identity()}});
}

void Aggregate::AddFactor(Factor f) {
  factors_.push_back(std::move(f));
  SortFactors(&factors_);
}

Aggregate Aggregate::Restrict(const std::vector<AttrId>& attrs) const {
  std::vector<Factor> kept;
  for (const Factor& f : factors_) {
    if (SetContains(attrs, f.attr)) kept.push_back(f);
  }
  return Aggregate(std::move(kept));
}

Aggregate Aggregate::Bind(const ParamPack& params) const {
  std::vector<Factor> resolved;
  resolved.reserve(factors_.size());
  for (const Factor& f : factors_) {
    resolved.push_back(Factor{f.attr, f.fn.Resolve(params)});
  }
  // Re-sort through the constructor: resolving changes factor signatures,
  // which the canonical factor order depends on.
  return Aggregate(std::move(resolved));
}

void Aggregate::CollectParams(std::vector<ParamId>* out) const {
  for (const Factor& f : factors_) {
    if (f.fn.IsParameterized()) out->push_back(f.fn.param());
  }
}

std::vector<AttrId> Aggregate::Attributes() const {
  std::vector<AttrId> out;
  out.reserve(factors_.size());
  for (const Factor& f : factors_) out.push_back(f.attr);
  return SortedUnique(std::move(out));
}

uint64_t Aggregate::Signature() const {
  uint64_t h = 0x517cc1b727220a95ULL;
  for (const Factor& f : factors_) h = HashCombine(h, f.Signature());
  return h;
}

std::string Aggregate::ToString(
    const std::vector<std::string>* attr_names) const {
  auto attr_name = [&](AttrId a) {
    if (attr_names != nullptr && a >= 0 &&
        static_cast<size_t>(a) < attr_names->size()) {
      return (*attr_names)[static_cast<size_t>(a)];
    }
    return "X" + std::to_string(a);
  };
  if (factors_.empty()) return "SUM(1)";
  std::ostringstream out;
  out << "SUM(";
  for (size_t i = 0; i < factors_.size(); ++i) {
    if (i > 0) out << " * ";
    const Factor& f = factors_[i];
    switch (f.fn.kind()) {
      case FunctionKind::kIdentity:
        out << attr_name(f.attr);
        break;
      case FunctionKind::kSquare:
        out << attr_name(f.attr) << "^2";
        break;
      case FunctionKind::kDictionary:
        out << f.fn.dict()->name << "(" << attr_name(f.attr) << ")";
        break;
      default: {
        std::string s = f.fn.ToString();
        // Replace the placeholder "x" with the attribute name.
        const size_t pos = s.find('x');
        if (pos != std::string::npos) s.replace(pos, 1, attr_name(f.attr));
        out << s;
        break;
      }
    }
  }
  out << ")";
  return out.str();
}

}  // namespace lmfao
