/// \file aggregate.h
/// \brief Aggregates as products of unary functions over attributes.
///
/// An Aggregate denotes SUM over the (non-materialized) join D of
/// `f_1(X_{a1}) * f_2(X_{a2}) * ... * f_k(X_{ak})`. The empty product is the
/// COUNT aggregate, SUM(1). Factors over the same attribute may repeat
/// (e.g. X*X), though Square is the idiomatic spelling.
///
/// Aggregates are *structurally deduplicated* throughout the engine (view
/// merging, register sharing); Signature() provides the dedup key.

#ifndef LMFAO_QUERY_AGGREGATE_H_
#define LMFAO_QUERY_AGGREGATE_H_

#include <string>
#include <vector>

#include "query/function.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace lmfao {

/// \brief One factor of an aggregate product: a function applied to an
/// attribute.
struct Factor {
  AttrId attr = kInvalidAttr;
  Function fn = Function::Identity();

  bool operator==(const Factor& o) const {
    return attr == o.attr && fn == o.fn;
  }
  uint64_t Signature() const;
};

/// \brief SUM of a product of factors over the join.
class Aggregate {
 public:
  /// SUM(1).
  Aggregate() = default;

  explicit Aggregate(std::vector<Factor> factors);

  /// \name Convenience constructors.
  /// @{
  static Aggregate Count();
  /// SUM(attr).
  static Aggregate Sum(AttrId attr);
  /// SUM(attr^2).
  static Aggregate SumSquare(AttrId attr);
  /// SUM(a * b).
  static Aggregate SumProduct(AttrId a, AttrId b);
  /// @}

  const std::vector<Factor>& factors() const { return factors_; }
  bool IsCount() const { return factors_.empty(); }

  /// Appends a factor; keeps the factor list sorted by (attr, signature) so
  /// structurally equal products have equal factor sequences.
  void AddFactor(Factor f);

  /// Returns a copy restricted to factors over attributes in `attrs`
  /// (a sorted set). Used by aggregate pushdown: the restriction of a
  /// query aggregate to a subtree.
  Aggregate Restrict(const std::vector<AttrId>& attrs) const;

  /// Returns a copy with every parameterized factor resolved to its bound
  /// literal threshold (all referenced slots must be bound — checked).
  Aggregate Bind(const ParamPack& params) const;

  /// Appends the parameter slots referenced by any factor to `out`
  /// (unsorted, may repeat).
  void CollectParams(std::vector<ParamId>* out) const;

  /// Sorted set of attributes referenced by any factor.
  std::vector<AttrId> Attributes() const;

  /// Structural signature used for deduplication.
  uint64_t Signature() const;

  bool operator==(const Aggregate& o) const { return factors_ == o.factors_; }

  /// Renders e.g. "SUM(units * price)" using `names` to resolve attributes.
  std::string ToString(
      const std::vector<std::string>* attr_names = nullptr) const;

 private:
  std::vector<Factor> factors_;
};

}  // namespace lmfao

#endif  // LMFAO_QUERY_AGGREGATE_H_
