/// \file parser.h
/// \brief A small SQL-ish parser for LMFAO queries.
///
/// Accepts the query dialect the paper writes its examples in:
///
///   SELECT SUM(units) FROM D
///   SELECT store, SUM(g(item) * h(date)) FROM D GROUP BY store
///   SELECT class, SUM(units * price) FROM D GROUP BY class
///   SELECT SUM(1), SUM(y), SUM(y^2) FROM D WHERE price <= 3.5 AND promo = 1
///
/// Supported pieces:
///   - any number of SUM(...) items plus bare group-by attributes in the
///     select list,
///   - products of factors inside SUM: `1`, attributes, `attr^2`,
///     registered dictionary functions `g(attr)`, and threshold indicators
///     `(attr <= 3.5)`,
///   - WHERE with AND-ed threshold comparisons, folded into every
///     aggregate as indicator factors (how Section 3's decision-tree
///     conditions are expressed),
///   - GROUP BY over int attributes.
///
/// Keywords are case-insensitive; the FROM clause must be the literal `D`
/// (queries always range over the natural join of the database).

#ifndef LMFAO_QUERY_PARSER_H_
#define LMFAO_QUERY_PARSER_H_

#include <map>
#include <memory>
#include <string>

#include "query/query.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace lmfao {

/// \brief Named user-defined dictionary functions available to queries.
using FunctionRegistry =
    std::map<std::string, std::shared_ptr<const FunctionDict>>;

/// \brief Parses one query.
StatusOr<Query> ParseQuery(const std::string& text, const Catalog& catalog,
                           const FunctionRegistry& functions = {});

/// \brief Parses a batch: queries separated by semicolons (empty statements
/// and surrounding whitespace are ignored).
StatusOr<QueryBatch> ParseQueryBatch(const std::string& text,
                                     const Catalog& catalog,
                                     const FunctionRegistry& functions = {});

}  // namespace lmfao

#endif  // LMFAO_QUERY_PARSER_H_
