/// \file function.h
/// \brief Unary aggregate functions.
///
/// Every LMFAO aggregate is SUM over the join of a *product of unary
/// functions*, each applied to a single attribute (Section 3 of the paper).
/// This file defines the function algebra: identity, square, constants,
/// user dictionaries (the paper's g(item) and h(date)), and threshold
/// indicators (decision-tree conditions `Xj op t` become indicator factors).

#ifndef LMFAO_QUERY_FUNCTION_H_
#define LMFAO_QUERY_FUNCTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "util/status.h"

namespace lmfao {

/// \brief Kinds of unary functions.
enum class FunctionKind : uint8_t {
  kIdentity = 0,   ///< f(x) = x
  kSquare = 1,     ///< f(x) = x^2
  kDictionary = 2, ///< f(x) = dict[x] (missing keys map to a default)
  kIndicatorLe = 3,  ///< f(x) = 1 if x <= t else 0
  kIndicatorLt = 4,  ///< f(x) = 1 if x <  t else 0
  kIndicatorGe = 5,  ///< f(x) = 1 if x >= t else 0
  kIndicatorGt = 6,  ///< f(x) = 1 if x >  t else 0
  kIndicatorEq = 7,  ///< f(x) = 1 if x == t else 0
  kIndicatorNe = 8,  ///< f(x) = 1 if x != t else 0
};

/// \brief Lookup table for user-defined dictionary functions.
///
/// Shared (by pointer) across all factors that reference the same function,
/// so structural aggregate deduplication can compare dictionary identity.
struct FunctionDict {
  std::string name;
  std::unordered_map<int64_t, double> table;
  double default_value = 0.0;
};

/// \brief A unary function of one numeric argument.
///
/// Cheap to copy; dictionary payloads are shared. Evaluation promotes int
/// attribute values to double (exact below 2^53, which covers all key
/// domains used here).
class Function {
 public:
  /// f(x) = x.
  static Function Identity();
  /// f(x) = x^2.
  static Function Square();
  /// f(x) = dict[x].
  static Function Dictionary(std::shared_ptr<const FunctionDict> dict);
  /// Threshold indicator f(x) = 1 if (x op t) else 0.
  static Function Indicator(FunctionKind op, double threshold);

  FunctionKind kind() const { return kind_; }
  double threshold() const { return threshold_; }
  const std::shared_ptr<const FunctionDict>& dict() const { return dict_; }

  /// Evaluates the function.
  double Eval(double x) const;

  /// Structural equality (dictionaries by pointer identity).
  bool operator==(const Function& o) const;
  bool operator!=(const Function& o) const { return !(*this == o); }

  /// Stable 64-bit structural signature for deduplication.
  uint64_t Signature() const;

  /// Renders e.g. "id", "sq", "g[·]", "(x<=3.5)".
  std::string ToString() const;

  /// The C++ expression the code generator emits for argument `arg`.
  std::string CodegenExpr(const std::string& arg) const;

  /// True for indicator kinds.
  bool IsIndicator() const;

 private:
  Function(FunctionKind kind, double threshold,
           std::shared_ptr<const FunctionDict> dict)
      : kind_(kind), threshold_(threshold), dict_(std::move(dict)) {}

  FunctionKind kind_;
  double threshold_;
  std::shared_ptr<const FunctionDict> dict_;
};

}  // namespace lmfao

#endif  // LMFAO_QUERY_FUNCTION_H_
