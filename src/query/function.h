/// \file function.h
/// \brief Unary aggregate functions.
///
/// Every LMFAO aggregate is SUM over the join of a *product of unary
/// functions*, each applied to a single attribute (Section 3 of the paper).
/// This file defines the function algebra: identity, square, constants,
/// user dictionaries (the paper's g(item) and h(date)), and threshold
/// indicators (decision-tree conditions `Xj op t` become indicator factors).
///
/// Indicators come in two flavors: *literal* (the threshold is a constant
/// baked into the function) and *parameterized* (the threshold is a named
/// slot, `ParamId`, bound at execution time via a `ParamPack`). Two
/// parameterized functions with the same slot are structurally equal no
/// matter what values are later bound, so a batch built from parameterized
/// functions compiles to ONE artifact that can be executed many times with
/// different constants — the compile-once/execute-many contract of
/// `Engine::Prepare`.

#ifndef LMFAO_QUERY_FUNCTION_H_
#define LMFAO_QUERY_FUNCTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace lmfao {

/// \brief Names a threshold slot of a parameterized function. Slots are
/// dense small integers scoped to one QueryBatch (allocate them 0, 1, 2,
/// ... as the batch is built).
using ParamId = int32_t;

/// Sentinel: the function carries a literal threshold, not a slot.
inline constexpr ParamId kNoParam = -1;

/// \brief Execution-time bindings for parameterized functions: a dense
/// ParamId -> double map.
///
/// Cheap to copy, value-semantic. `PreparedBatch::Execute` validates that
/// every slot the compiled batch references is bound before running.
class ParamPack {
 public:
  ParamPack() = default;

  /// Binds slot `id` (grows the pack as needed). Rebinding overwrites.
  void Set(ParamId id, double value) {
    LMFAO_CHECK_GE(id, 0);
    if (static_cast<size_t>(id) >= values_.size()) {
      values_.resize(static_cast<size_t>(id) + 1, 0.0);
      bound_.resize(static_cast<size_t>(id) + 1, false);
    }
    values_[static_cast<size_t>(id)] = value;
    bound_[static_cast<size_t>(id)] = true;
  }

  bool Has(ParamId id) const {
    return id >= 0 && static_cast<size_t>(id) < bound_.size() &&
           bound_[static_cast<size_t>(id)];
  }

  double Get(ParamId id) const {
    LMFAO_CHECK(Has(id));
    return values_[static_cast<size_t>(id)];
  }

  /// Number of bound slots.
  size_t size() const {
    size_t n = 0;
    for (bool b : bound_) n += b ? 1 : 0;
    return n;
  }
  bool empty() const { return size() == 0; }

 private:
  std::vector<double> values_;
  std::vector<bool> bound_;
};

/// \brief Kinds of unary functions.
enum class FunctionKind : uint8_t {
  kIdentity = 0,   ///< f(x) = x
  kSquare = 1,     ///< f(x) = x^2
  kDictionary = 2, ///< f(x) = dict[x] (missing keys map to a default)
  kIndicatorLe = 3,  ///< f(x) = 1 if x <= t else 0
  kIndicatorLt = 4,  ///< f(x) = 1 if x <  t else 0
  kIndicatorGe = 5,  ///< f(x) = 1 if x >= t else 0
  kIndicatorGt = 6,  ///< f(x) = 1 if x >  t else 0
  kIndicatorEq = 7,  ///< f(x) = 1 if x == t else 0
  kIndicatorNe = 8,  ///< f(x) = 1 if x != t else 0
};

/// \brief Lookup table for user-defined dictionary functions.
///
/// Shared (by pointer) across all factors that reference the same function,
/// so structural aggregate deduplication can compare dictionary identity.
struct FunctionDict {
  std::string name;
  std::unordered_map<int64_t, double> table;
  double default_value = 0.0;
};

/// \brief A unary function of one numeric argument.
///
/// Cheap to copy; dictionary payloads are shared. Evaluation promotes int
/// attribute values to double (exact below 2^53, which covers all key
/// domains used here).
class Function {
 public:
  /// f(x) = x.
  static Function Identity();
  /// f(x) = x^2.
  static Function Square();
  /// f(x) = dict[x].
  static Function Dictionary(std::shared_ptr<const FunctionDict> dict);
  /// Threshold indicator f(x) = 1 if (x op t) else 0.
  static Function Indicator(FunctionKind op, double threshold);
  /// Parameterized threshold indicator: the threshold is slot `param` of
  /// the ParamPack supplied at execution time. Structural identity (==,
  /// Signature) is the slot, not any bound value.
  static Function IndicatorParam(FunctionKind op, ParamId param);

  FunctionKind kind() const { return kind_; }
  double threshold() const { return threshold_; }
  const std::shared_ptr<const FunctionDict>& dict() const { return dict_; }

  /// The parameter slot, or kNoParam for literal functions.
  ParamId param() const { return param_; }
  bool IsParameterized() const { return param_ != kNoParam; }

  /// The threshold this function evaluates with under `params`: the
  /// literal threshold, or the bound slot value for parameterized
  /// functions (which must then be bound — checked).
  double ResolvedThreshold(const ParamPack* params) const {
    if (param_ == kNoParam) return threshold_;
    LMFAO_CHECK(params != nullptr && params->Has(param_))
        << "unbound function parameter p" << param_;
    return params->Get(param_);
  }

  /// Returns the literal function obtained by substituting the bound slot
  /// value (identity for non-parameterized functions).
  Function Resolve(const ParamPack& params) const;

  /// Evaluates the function. Parameterized functions must be Resolve()d
  /// first (checked).
  double Eval(double x) const;

  /// Structural equality (dictionaries by pointer identity; parameterized
  /// functions by slot, ignoring any bound value).
  bool operator==(const Function& o) const;
  bool operator!=(const Function& o) const { return !(*this == o); }

  /// Stable 64-bit structural signature for deduplication. Parameterized
  /// functions hash (kind, slot) — NOT a threshold value — so batches that
  /// differ only in bound constants share one signature (and one compiled
  /// plan in the engine's plan cache).
  uint64_t Signature() const;

  /// Renders e.g. "id", "sq", "g[·]", "(x<=3.5)", "(x<=?p2)".
  std::string ToString() const;

  /// The C++ expression the code generator emits for argument `arg`.
  /// Parameterized functions must be Resolve()d before codegen (checked):
  /// generated standalone programs bake constants in.
  std::string CodegenExpr(const std::string& arg) const;

  /// True for indicator kinds.
  bool IsIndicator() const;

 private:
  Function(FunctionKind kind, double threshold,
           std::shared_ptr<const FunctionDict> dict,
           ParamId param = kNoParam)
      : kind_(kind), threshold_(threshold), dict_(std::move(dict)),
        param_(param) {}

  FunctionKind kind_;
  double threshold_;
  std::shared_ptr<const FunctionDict> dict_;
  ParamId param_ = kNoParam;
};

}  // namespace lmfao

#endif  // LMFAO_QUERY_FUNCTION_H_
