/// \file query.h
/// \brief Group-by aggregate queries and query batches.
///
/// A Query is `SELECT G, SUM(p_1), ..., SUM(p_m) FROM D GROUP BY G` where D
/// is the natural join of all catalog relations and each p_i is a product of
/// unary functions (see aggregate.h). A QueryBatch is the unit of input to
/// the engine: hundreds to thousands of such queries (Section 1).

#ifndef LMFAO_QUERY_QUERY_H_
#define LMFAO_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "query/aggregate.h"
#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/view.h"
#include "util/status.h"

namespace lmfao {

/// \brief Index of a query within its batch.
using QueryId = int32_t;

/// \brief One group-by aggregate query over the join of the database.
struct Query {
  QueryId id = -1;
  std::string name;
  /// Sorted set of group-by attributes (int-typed).
  std::vector<AttrId> group_by;
  /// Aggregates computed for each group.
  std::vector<Aggregate> aggregates;
  /// Optional root override: the join-tree node at which the query is
  /// evaluated. kInvalidRelation means "let the engine choose".
  RelationId root_hint = kInvalidRelation;

  /// All attributes referenced by the query (group-by plus factor attrs).
  std::vector<AttrId> ReferencedAttributes() const;

  /// Renders SQL-ish text.
  std::string ToString(const Catalog* catalog = nullptr) const;
};

/// \brief A batch of queries evaluated together.
class QueryBatch {
 public:
  QueryBatch() = default;

  /// Adds a query, assigning its id. Returns the id.
  QueryId Add(Query query);

  int size() const { return static_cast<int>(queries_.size()); }
  bool empty() const { return queries_.empty(); }

  const Query& query(QueryId id) const {
    return queries_[static_cast<size_t>(id)];
  }
  Query& mutable_query(QueryId id) { return queries_[static_cast<size_t>(id)]; }

  const std::vector<Query>& queries() const { return queries_; }

  /// Total number of aggregates across all queries.
  int TotalAggregates() const;

  /// Sorted, deduplicated parameter slots referenced by any aggregate.
  /// `PreparedBatch::Execute` requires exactly these slots bound.
  std::vector<ParamId> RequiredParams() const;

  /// Returns a copy of the batch with every parameterized function
  /// resolved against `params` — the literal batch a one-shot consumer
  /// (scan baselines, codegen) evaluates. Fails if a referenced slot is
  /// unbound.
  StatusOr<QueryBatch> Bind(const ParamPack& params) const;

  /// Validates the batch against a catalog: group-by attributes exist, are
  /// int-typed, and every referenced attribute occurs in some relation.
  Status Validate(const Catalog& catalog) const;

 private:
  std::vector<Query> queries_;
};

/// \brief Result of one query: a view keyed by the group-by attributes.
struct QueryResult {
  QueryId query_id = -1;
  /// Group-by attributes in key order.
  std::vector<AttrId> group_by;
  /// Map from group-by key to aggregate payload (one slot per aggregate).
  ViewMap data{0, 1};

  /// Sum of a payload column across all keys (useful in tests).
  double TotalOf(int agg_index) const;
};

}  // namespace lmfao

#endif  // LMFAO_QUERY_QUERY_H_
