#include "query/parser.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace lmfao {
namespace {

/// Token kinds of the small dialect.
enum class TokenKind {
  kIdentifier,
  kNumber,
  kComma,
  kStar,
  kLParen,
  kRParen,
  kCaret,
  kComparison,  // <=, <, >=, >, =, ==, !=, <>
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;
};

/// Renders a byte offset into `text` as 1-based "line L, column C" — raw
/// offsets are useless to a user once the statement spans multiple lines.
std::string AtPosition(const std::string& text, size_t offset) {
  size_t line = 1;
  size_t column = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return "line " + std::to_string(line) + ", column " + std::to_string(column);
}

/// What the parser actually saw, for "expected X, got Y" messages.
std::string TokenDesc(const Token& token) {
  if (token.kind == TokenKind::kEnd) return "end of input";
  if (!token.text.empty()) return "'" + token.text + "'";
  switch (token.kind) {
    case TokenKind::kComma:
      return "','";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kCaret:
      return "'^'";
    default:
      return "token";
  }
}

/// Hand-rolled tokenizer (the dialect is tiny).
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token token;
      token.offset = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_')) {
          ++j;
        }
        token.kind = TokenKind::kIdentifier;
        token.text = text_.substr(i, j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
                 ((c == '-' || c == '+') && i + 1 < text_.size() &&
                  (std::isdigit(static_cast<unsigned char>(text_[i + 1])) ||
                   text_[i + 1] == '.'))) {
        size_t j = i + 1;
        while (j < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '.' || text_[j] == 'e' || text_[j] == 'E' ||
                ((text_[j] == '-' || text_[j] == '+') &&
                 (text_[j - 1] == 'e' || text_[j - 1] == 'E')))) {
          ++j;
        }
        token.kind = TokenKind::kNumber;
        token.text = text_.substr(i, j - i);
        i = j;
      } else {
        switch (c) {
          case ',':
            token.kind = TokenKind::kComma;
            ++i;
            break;
          case '*':
            token.kind = TokenKind::kStar;
            ++i;
            break;
          case '(':
            token.kind = TokenKind::kLParen;
            ++i;
            break;
          case ')':
            token.kind = TokenKind::kRParen;
            ++i;
            break;
          case '^':
            token.kind = TokenKind::kCaret;
            ++i;
            break;
          case '<':
          case '>':
          case '=':
          case '!': {
            size_t j = i + 1;
            if (j < text_.size() &&
                (text_[j] == '=' || (c == '<' && text_[j] == '>'))) {
              ++j;
            }
            token.kind = TokenKind::kComparison;
            token.text = text_.substr(i, j - i);
            i = j;
            if (token.text == "!" ) {
              return Status::InvalidArgument(
                  "stray '!' at " + AtPosition(text_, token.offset));
            }
            break;
          }
          default:
            return Status::InvalidArgument(
                std::string("unexpected character '") + c + "' at " +
                AtPosition(text_, i));
        }
      }
      out.push_back(std::move(token));
    }
    out.push_back(Token{TokenKind::kEnd, "", text_.size()});
    return out;
  }

 private:
  const std::string& text_;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(const std::string& text, std::vector<Token> tokens,
         const Catalog& catalog, const FunctionRegistry& functions)
      : text_(text),
        tokens_(std::move(tokens)),
        catalog_(catalog),
        functions_(functions) {}

  StatusOr<Query> Parse() {
    Query query;
    LMFAO_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    // Select list: bare attributes (implicit group-bys) and SUM items.
    std::vector<AttrId> select_attrs;
    for (;;) {
      if (PeekKeyword("SUM")) {
        ++pos_;
        LMFAO_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
        LMFAO_ASSIGN_OR_RETURN(Aggregate agg, ParseProduct());
        LMFAO_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
        query.aggregates.push_back(std::move(agg));
      } else {
        LMFAO_ASSIGN_OR_RETURN(AttrId attr, ParseAttribute());
        select_attrs.push_back(attr);
      }
      if (Peek().kind == TokenKind::kComma) {
        ++pos_;
        continue;
      }
      break;
    }
    LMFAO_RETURN_NOT_OK(ExpectKeyword("FROM"));
    LMFAO_ASSIGN_OR_RETURN(std::string from, ExpectIdentifier());
    if (ToLower(from) != "d") {
      return Status::InvalidArgument(
          "queries range over the join D; got FROM " + from);
    }
    // Optional WHERE with AND-ed comparisons -> indicator factors.
    std::vector<Factor> conditions;
    if (PeekKeyword("WHERE")) {
      ++pos_;
      for (;;) {
        LMFAO_ASSIGN_OR_RETURN(Factor cond, ParseComparison());
        conditions.push_back(std::move(cond));
        if (PeekKeyword("AND")) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    // Optional GROUP BY.
    if (PeekKeyword("GROUP")) {
      ++pos_;
      LMFAO_RETURN_NOT_OK(ExpectKeyword("BY"));
      for (;;) {
        LMFAO_ASSIGN_OR_RETURN(AttrId attr, ParseAttribute());
        query.group_by.push_back(attr);
        if (Peek().kind == TokenKind::kComma) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing input starting with " +
                                     TokenDesc(Peek()) + " at " + Here());
    }
    // Bare select attributes must be grouped by (SQL semantics).
    for (AttrId attr : select_attrs) {
      if (!SetContains(SortedUnique(query.group_by), attr)) {
        query.group_by.push_back(attr);
      }
    }
    if (query.aggregates.empty()) {
      query.aggregates.push_back(Aggregate::Count());
    }
    // Fold WHERE conditions into every aggregate.
    if (!conditions.empty()) {
      for (Aggregate& agg : query.aggregates) {
        std::vector<Factor> factors = agg.factors();
        factors.insert(factors.end(), conditions.begin(), conditions.end());
        agg = Aggregate(std::move(factors));
      }
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }

  /// Position of the current token, as "line L, column C".
  std::string Here() const { return AtPosition(text_, Peek().offset); }

  bool PeekKeyword(const char* keyword) const {
    return Peek().kind == TokenKind::kIdentifier &&
           ToLower(Peek().text) == ToLower(keyword);
  }

  Status ExpectKeyword(const char* keyword) {
    if (!PeekKeyword(keyword)) {
      return Status::InvalidArgument(std::string("expected ") + keyword +
                                     " at " + Here() + ", got " +
                                     TokenDesc(Peek()));
    }
    ++pos_;
    return Status::OK();
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument(std::string("expected ") + what + " at " +
                                     Here() + ", got " + TokenDesc(Peek()));
    }
    ++pos_;
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected identifier at " + Here() +
                                     ", got " + TokenDesc(Peek()));
    }
    return tokens_[pos_++].text;
  }

  StatusOr<AttrId> ParseAttribute() {
    const std::string at = Here();
    LMFAO_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    auto id = catalog_.AttrIdOf(name);
    if (!id.ok()) {
      return Status::InvalidArgument("unknown attribute '" + name + "' at " +
                                     at);
    }
    return *id;
  }

  StatusOr<double> ParseNumber() {
    if (Peek().kind != TokenKind::kNumber) {
      return Status::InvalidArgument("expected number at " + Here() +
                                     ", got " + TokenDesc(Peek()));
    }
    return std::strtod(tokens_[pos_++].text.c_str(), nullptr);
  }

  static StatusOr<FunctionKind> ComparisonOp(const std::string& op) {
    if (op == "<=") return FunctionKind::kIndicatorLe;
    if (op == "<") return FunctionKind::kIndicatorLt;
    if (op == ">=") return FunctionKind::kIndicatorGe;
    if (op == ">") return FunctionKind::kIndicatorGt;
    if (op == "=" || op == "==") return FunctionKind::kIndicatorEq;
    if (op == "!=" || op == "<>") return FunctionKind::kIndicatorNe;
    return Status::InvalidArgument("unknown comparison: " + op);
  }

  /// attr op number (used by WHERE and parenthesized factors).
  StatusOr<Factor> ParseComparison() {
    LMFAO_ASSIGN_OR_RETURN(AttrId attr, ParseAttribute());
    if (Peek().kind != TokenKind::kComparison) {
      return Status::InvalidArgument("expected comparison at " + Here() +
                                     ", got " + TokenDesc(Peek()));
    }
    LMFAO_ASSIGN_OR_RETURN(FunctionKind op, ComparisonOp(tokens_[pos_].text));
    ++pos_;
    LMFAO_ASSIGN_OR_RETURN(double threshold, ParseNumber());
    return Factor{attr, Function::Indicator(op, threshold)};
  }

  /// Product of factors inside SUM(...).
  StatusOr<Aggregate> ParseProduct() {
    std::vector<Factor> factors;
    for (;;) {
      if (Peek().kind == TokenKind::kNumber) {
        // Only the literal 1 (the count) is allowed as a standalone factor.
        if (StripWhitespace(Peek().text) != "1") {
          return Status::InvalidArgument(
              "only the constant 1 is allowed inside SUM; got " + Peek().text +
              " at " + Here());
        }
        ++pos_;
      } else if (Peek().kind == TokenKind::kLParen) {
        ++pos_;
        LMFAO_ASSIGN_OR_RETURN(Factor cond, ParseComparison());
        LMFAO_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
        factors.push_back(std::move(cond));
      } else if (Peek().kind == TokenKind::kIdentifier) {
        const std::string name = Peek().text;
        // Dictionary call?
        auto fn = functions_.find(name);
        if (fn != functions_.end() &&
            tokens_[pos_ + 1].kind == TokenKind::kLParen) {
          pos_ += 2;
          LMFAO_ASSIGN_OR_RETURN(AttrId attr, ParseAttribute());
          LMFAO_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
          factors.push_back(Factor{attr, Function::Dictionary(fn->second)});
        } else {
          LMFAO_ASSIGN_OR_RETURN(AttrId attr, ParseAttribute());
          if (Peek().kind == TokenKind::kCaret) {
            ++pos_;
            const std::string at = Here();
            LMFAO_ASSIGN_OR_RETURN(double power, ParseNumber());
            if (power != 2.0) {
              return Status::InvalidArgument("only ^2 is supported, at " + at);
            }
            factors.push_back(Factor{attr, Function::Square()});
          } else {
            factors.push_back(Factor{attr, Function::Identity()});
          }
        }
      } else {
        return Status::InvalidArgument("expected factor at " + Here() +
                                       ", got " + TokenDesc(Peek()));
      }
      if (Peek().kind == TokenKind::kStar) {
        ++pos_;
        continue;
      }
      break;
    }
    return Aggregate(std::move(factors));
  }

  const std::string& text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const Catalog& catalog_;
  const FunctionRegistry& functions_;
};

}  // namespace

StatusOr<Query> ParseQuery(const std::string& text, const Catalog& catalog,
                           const FunctionRegistry& functions) {
  Lexer lexer(text);
  LMFAO_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(text, std::move(tokens), catalog, functions);
  return parser.Parse();
}

StatusOr<QueryBatch> ParseQueryBatch(const std::string& text,
                                     const Catalog& catalog,
                                     const FunctionRegistry& functions) {
  QueryBatch batch;
  size_t statement_index = 0;
  for (const std::string& statement : SplitString(text, ';')) {
    const std::string_view stripped = StripWhitespace(statement);
    if (stripped.empty()) continue;
    ++statement_index;
    StatusOr<Query> q = ParseQuery(std::string(stripped), catalog, functions);
    if (!q.ok()) {
      // Line/column in the message is relative to this statement; say which
      // one so the position is actionable in multi-statement input.
      return Status::InvalidArgument(
          "statement " + std::to_string(statement_index) + ": " +
          std::string(q.status().message()));
    }
    q->name = "q" + std::to_string(batch.size());
    batch.Add(*std::move(q));
  }
  if (batch.empty()) {
    return Status::InvalidArgument("no queries in input");
  }
  return batch;
}

}  // namespace lmfao
